package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"phihpl/internal/testutil"
)

// durableConfig is testConfig plus a journal in a per-test directory.
func durableConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig()
	cfg.JournalPath = filepath.Join(t.TempDir(), "wal.journal")
	return cfg
}

// crashImage simulates a SIGKILL: it copies the live journal byte-for-byte
// to a fresh path without any shutdown handshake. Callers take the copy at
// a moment with no append in flight (after a terminal wait, or while every
// live job is parked in a gated runner), which is exactly the durability
// contract — records are fsynced before their transitions become visible.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	dst := filepath.Join(t.TempDir(), "wal.journal")
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatalf("copy journal: %v", err)
	}
	return dst
}

func mustRecover(t *testing.T, s *Server) RecoveryStats {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := s.WaitRecovered(ctx)
	if err != nil {
		t.Fatalf("WaitRecovered: %v", err)
	}
	return st
}

func jobJSON(t *testing.T, j *job) string {
	t.Helper()
	b, err := json.Marshal(j.view())
	if err != nil {
		t.Fatalf("marshal view: %v", err)
	}
	return string(b)
}

// TestCrashRecoveryPreservesTerminalJobsAndCache is the core durability
// invariant: after a simulated SIGKILL, a completed job's record AND its
// single-flight cache entry survive restart, and the restored JSON view is
// byte-for-byte identical to the pre-crash one.
func TestCrashRecoveryPreservesTerminalJobsAndCache(t *testing.T) {
	defer testutil.NoLeaks(t)()
	cfg := durableConfig(t)
	cfg.Runner = passRunner
	s := New(cfg)
	mustRecover(t, s)

	j := mustSubmit(t, s, JobSpec{N: 64, Seed: 7})
	if st := waitTerminal(t, j); st != StatePassed {
		t.Fatalf("job state %s, want PASSED", st)
	}
	before := jobJSON(t, j)

	img := crashImage(t, cfg.JournalPath)
	s.Close()

	cfg2 := testConfig()
	cfg2.JournalPath = img
	cfg2.Runner = passRunner
	s2 := New(cfg2)
	defer s2.Close()
	st := mustRecover(t, s2)
	if st.RestoredTerminal != 1 || st.RestoredCache != 1 {
		t.Fatalf("recovery stats = %+v, want 1 terminal + 1 cache", st)
	}
	if st.Journal.Damaged() {
		t.Errorf("clean journal reported damage: %+v", st.Journal)
	}

	j2, ok := s2.Job(j.id)
	if !ok {
		t.Fatalf("job %s lost across restart", j.id)
	}
	if after := jobJSON(t, j2); after != before {
		t.Errorf("restored job view differs:\n pre-crash: %s\npost-crash: %s", before, after)
	}

	// The identical spec is an instant cache hit on the restarted server.
	hit := mustSubmit(t, s2, JobSpec{N: 64, Seed: 7})
	if st := waitTerminal(t, hit); st != StatePassed {
		t.Fatalf("cache-hit job state %s, want PASSED", st)
	}
	hv := hit.view()
	if !hv.Cached {
		t.Error("post-restart identical spec did not hit the recovered cache")
	}
	pre, post := j.view().Result, hv.Result
	b1, _ := json.Marshal(pre)
	b2, _ := json.Marshal(post)
	if string(b1) != string(b2) {
		t.Errorf("cached result not byte-identical:\n pre-crash: %s\npost-crash: %s", b1, b2)
	}
	if got := s2.Registry().Counter("server.cache_hits").Value(); got < 1 {
		t.Errorf("server.cache_hits = %d, want >= 1", got)
	}
}

// TestCrashRecoveryRequeuesQueuedAndAbortsRunning: jobs that were QUEUED
// at the crash run to completion after restart; the job that was RUNNING
// is ABORTED with a typed InterruptedError carrying the boot generation.
func TestCrashRecoveryRequeuesQueuedAndAbortsRunning(t *testing.T) {
	defer testutil.NoLeaks(t)()
	gate := make(chan struct{})
	cfg := durableConfig(t)
	cfg.Concurrency = 1
	cfg.Runner = gatedRunner(gate)
	s := New(cfg)
	mustRecover(t, s)

	running := mustSubmit(t, s, JobSpec{N: 64, Seed: 1})
	waitState(t, running, StateRunning)
	var queued []*job
	for seed := uint64(2); seed <= 4; seed++ {
		queued = append(queued, mustSubmit(t, s, JobSpec{N: 64, Seed: seed}))
	}

	img := crashImage(t, cfg.JournalPath)
	close(gate)
	s.Close()

	cfg2 := testConfig()
	cfg2.JournalPath = img
	cfg2.Runner = passRunner
	s2 := New(cfg2)
	defer s2.Close()
	st := mustRecover(t, s2)
	if st.Interrupted != 1 || st.Requeued != 3 {
		t.Fatalf("recovery stats = %+v, want 1 interrupted + 3 requeued", st)
	}

	r2, ok := s2.Job(running.id)
	if !ok {
		t.Fatalf("running-at-crash job %s lost", running.id)
	}
	if got := waitTerminal(t, r2); got != StateAborted {
		t.Fatalf("running-at-crash job state %s, want ABORTED", got)
	}
	ei := r2.view().Error
	if ei == nil || ei.Kind != "interrupted" {
		t.Fatalf("interrupted job error = %+v, want kind interrupted", ei)
	}
	if ei.Generation != st.Generation {
		t.Errorf("InterruptedError generation = %d, want boot generation %d", ei.Generation, st.Generation)
	}

	for _, q := range queued {
		q2, ok := s2.Job(q.id)
		if !ok {
			t.Fatalf("queued-at-crash job %s lost", q.id)
		}
		if got := waitTerminal(t, q2); got != StatePassed {
			t.Errorf("requeued job %s state %s, want PASSED", q.id, got)
		}
	}
	if got := s2.Registry().Counter("server.recovered_requeued").Value(); got != 3 {
		t.Errorf("server.recovered_requeued = %d, want 3", got)
	}
}

// TestRecoveryOverDepthDoesNot429 covers the Retry-After satellite: a
// restarted server may legally hold more queued jobs than QueueDepth (it
// accepted them before the crash). Recovered jobs must all be admitted,
// and the 429 hint for *new* submissions must stay clamped rather than
// scale with the overshoot.
func TestRecoveryOverDepthDoesNot429(t *testing.T) {
	defer testutil.NoLeaks(t)()
	gate := make(chan struct{})
	cfg := durableConfig(t)
	cfg.QueueDepth = 2
	cfg.Concurrency = 1
	cfg.Runner = gatedRunner(gate)
	s := New(cfg)
	mustRecover(t, s)

	running := mustSubmit(t, s, JobSpec{N: 64, Seed: 1})
	waitState(t, running, StateRunning)
	q1 := mustSubmit(t, s, JobSpec{N: 64, Seed: 2})
	q2 := mustSubmit(t, s, JobSpec{N: 64, Seed: 3})

	img := crashImage(t, cfg.JournalPath)
	close(gate)
	s.Close()

	// The restarted server is tighter: QueueDepth 1 < the 2 recovered
	// queued jobs. Both must still be admitted (no 429 for recovered work).
	gate2 := make(chan struct{})
	cfg2 := testConfig()
	cfg2.QueueDepth = 1
	cfg2.Concurrency = 1
	cfg2.JournalPath = img
	cfg2.Runner = gatedRunner(gate2)
	s2 := New(cfg2)
	defer s2.Close()
	st := mustRecover(t, s2)
	if st.Requeued != 2 {
		t.Fatalf("recovery stats = %+v, want 2 requeued", st)
	}
	for _, id := range []string{q1.id, q2.id} {
		if _, ok := s2.Job(id); !ok {
			t.Fatalf("recovered queued job %s was dropped", id)
		}
	}

	// A new submission sees the over-depth queue as 429 with a sane hint.
	if _, ae := s2.Submit(JobSpec{N: 64, Seed: 9}); ae == nil {
		t.Fatal("submission into an over-depth queue was admitted")
	} else if ae.status != 429 || ae.retryAfter < 1 || ae.retryAfter > 30 {
		t.Fatalf("over-depth rejection = status %d retryAfter %d, want 429 with clamped hint", ae.status, ae.retryAfter)
	}

	close(gate2)
	for _, q := range []*job{q1, q2} {
		j2, _ := s2.Job(q.id)
		if got := waitTerminal(t, j2); got != StatePassed {
			t.Errorf("recovered job %s state %s, want PASSED", q.id, got)
		}
	}
}

// TestReadyzDuringRecovery: until replay settles, /readyz answers 503
// "recovering" and submissions get a typed 503 with a Retry-After; both
// flip as soon as recovery completes.
func TestReadyzDuringRecovery(t *testing.T) {
	defer testutil.NoLeaks(t)()
	hold := make(chan struct{})
	cfg := durableConfig(t)
	cfg.Runner = passRunner
	cfg.recoveryGate = hold
	s := New(cfg)
	h := s.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "recovering") {
		t.Fatalf("/readyz during replay = %d %q, want 503 recovering", rr.Code, rr.Body.String())
	}
	if _, ae := s.Submit(JobSpec{N: 64}); ae == nil {
		t.Fatal("submission during replay was admitted")
	} else if ae.status != 503 || ae.code != "recovering" || ae.retryAfter < 1 {
		t.Fatalf("submission during replay = status %d code %q retryAfter %d, want 503 recovering with hint",
			ae.status, ae.code, ae.retryAfter)
	}

	close(hold)
	mustRecover(t, s)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/readyz after replay = %d, want 200", rr.Code)
	}
	j := mustSubmit(t, s, JobSpec{N: 64})
	if st := waitTerminal(t, j); st != StatePassed {
		t.Fatalf("post-recovery job state %s, want PASSED", st)
	}
	s.Close()
}

// TestCompactionPreservesRecoverableState: with an aggressive compaction
// threshold the journal rotates mid-run, and a crash after compaction
// still restores every terminal job and cache entry.
func TestCompactionPreservesRecoverableState(t *testing.T) {
	defer testutil.NoLeaks(t)()
	cfg := durableConfig(t)
	cfg.CompactEvery = 5
	cfg.Runner = passRunner
	s := New(cfg)
	mustRecover(t, s)

	var views []string
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		j := mustSubmit(t, s, JobSpec{N: 64, Seed: seed})
		if st := waitTerminal(t, j); st != StatePassed {
			t.Fatalf("job seed=%d state %s, want PASSED", seed, st)
		}
		views = append(views, jobJSON(t, j))
		ids = append(ids, j.id)
	}
	if got := s.Registry().Counter("journal.compactions").Value(); got < 1 {
		t.Fatalf("journal.compactions = %d, want >= 1 with CompactEvery=5", got)
	}

	img := crashImage(t, cfg.JournalPath)
	s.Close()

	cfg2 := testConfig()
	cfg2.JournalPath = img
	cfg2.Runner = passRunner
	s2 := New(cfg2)
	defer s2.Close()
	st := mustRecover(t, s2)
	if st.RestoredTerminal != len(ids) {
		t.Fatalf("restored %d terminal jobs, want %d (stats %+v)", st.RestoredTerminal, len(ids), st)
	}
	for i, id := range ids {
		j2, ok := s2.Job(id)
		if !ok {
			t.Fatalf("job %s lost across compaction + crash", id)
		}
		if got := jobJSON(t, j2); got != views[i] {
			t.Errorf("job %s view differs after compacted recovery:\n pre: %s\npost: %s", id, views[i], got)
		}
	}
}
