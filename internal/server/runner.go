package server

import (
	"context"
	"fmt"

	"phihpl"
	"phihpl/internal/trace"
)

// DefaultRunner dispatches a validated Spec onto the facade's ctx-aware
// solvers — the same plumbing cmd/hpl uses, so a job observes its
// deadline at every task-issue and stage boundary, worker panics arrive
// as typed *pool.PanicError, and results are bitwise identical to the
// CLI's. Tests wrap this to inject chaos (panics, transient errors)
// while delegating real specs unchanged.
func DefaultRunner(ctx context.Context, sp Spec, rec *trace.Recorder) (phihpl.SolveResult, error) {
	switch sp.Mode {
	case ModeNative:
		if sp.Precision == phihpl.PrecisionMixed {
			return phihpl.SolveMixedPrecisionCtx(ctx, sp.N, sp.Precision, sp.NB, sp.Workers, sp.Seed, rec)
		}
		return phihpl.SolveTracedContext(ctx, sp.N, phihpl.DynamicDAG, sp.NB, sp.Workers, sp.Seed, rec)
	case ModeDist2D:
		return phihpl.SolveDistributed2DPrecisionCtx(ctx, sp.N, sp.NB, sp.P, sp.Q, sp.Seed, sp.Lookahead, sp.Precision, rec)
	case ModeHybrid2D:
		return phihpl.SolveHybrid2DPrecisionCtx(ctx, sp.N, sp.NB, sp.P, sp.Q, sp.Seed, sp.Lookahead, sp.Precision, rec)
	case ModeFT:
		cfg := phihpl.FTConfig{
			Plan:            sp.Plan,
			Timeout:         sp.FTTimeout,
			CheckpointEvery: sp.CkptEvery,
			MaxRestarts:     sp.MaxRestarts,
			Lookahead:       sp.Lookahead,
			Trace:           rec,
		}
		return phihpl.SolveFaultTolerant2DCtx(ctx, sp.N, sp.NB, sp.P, sp.Q, sp.Seed, cfg)
	default:
		return phihpl.SolveResult{}, fmt.Errorf("server: unknown mode %q", sp.Mode)
	}
}
