// Package server turns the cancellable, observable solver stack into a
// long-running HPL-as-a-service: an HTTP/JSON job API backed by a bounded
// multi-tenant queue, a scheduler that multiplexes jobs over the shared
// internal/pool workers through the phihpl facade (SolveContext /
// SolveDistributed2DModeCtx / SolveMixedPrecisionCtx / ...), single-flight
// result caching (runs are bitwise deterministic, so cache hits are
// exact), per-job panic isolation, retry-with-backoff for transient typed
// errors, and graceful drain.
//
// Robustness is the design center, not an afterthought:
//
//   - Admission control: a full queue answers 429 + Retry-After instead of
//     growing without bound; invalid requests get typed 4xx errors; a
//     memory gate estimates each job's matrix footprint and keeps the sum
//     of running jobs under a budget — jobs queue rather than OOM.
//   - Per-tenant fairness: weighted round-robin dequeue plus per-tenant
//     concurrent-job caps, so a heavy tenant cannot starve a light one.
//   - Isolation: every job attempt runs behind a recover barrier; a
//     panicking solve yields a FAILED job carrying the typed
//     *pool.PanicError — never a dead server.
//   - Degradation: jobs failing with transient typed errors (ErrTimeout,
//     ErrRankFailed from fault-injected runs) are retried with backoff up
//     to a per-job budget; every job runs under a server-enforced deadline.
//   - Lifecycle: Drain stops admission, aborts queued jobs, gives running
//     jobs a deadline to finish, then cancels them — the process exits 0.
//
// See DESIGN.md §11 for the admission/fairness/drain state machine and
// the error contract.
package server

import (
	"fmt"
	"regexp"
	"sync"
	"time"

	"phihpl"
	"phihpl/internal/trace"
)

// State is a job's lifecycle state. QUEUED and RUNNING are transient;
// PASSED, FAILED and ABORTED are terminal. A submission that is never
// admitted (bad request, full queue, draining server) is REJECTED — it
// gets an error response, not a job record.
type State string

// Job states.
const (
	StateQueued   State = "QUEUED"
	StateRunning  State = "RUNNING"
	StatePassed   State = "PASSED"  // solve completed, residual under threshold
	StateFailed   State = "FAILED"  // residual failure or typed error (incl. panic)
	StateAborted  State = "ABORTED" // deadline, client cancel, or server drain
	StateRejected State = "REJECTED"
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StatePassed || s == StateFailed || s == StateAborted
}

// Mode selects the solver a job runs.
type Mode string

// Solver modes.
const (
	ModeNative   Mode = "native"   // shared-memory dynamic-DAG solve (supports precision=mixed)
	ModeDist2D   Mode = "dist2d"   // P×Q block-cyclic distributed solve (supports precision=mixed)
	ModeHybrid2D Mode = "hybrid2d" // dist2d with offload-engine trailing updates (supports precision=mixed)
	ModeFT       Mode = "ft"       // fault-tolerant dist2d (supports a fault plan; FP64 only)
)

// JobSpec is the wire format of POST /v1/solve. Zero fields take server
// defaults; see Validate for the accepted ranges.
type JobSpec struct {
	Tenant    string `json:"tenant,omitempty"`
	Mode      string `json:"mode,omitempty"`      // native | dist2d | hybrid2d | ft (default native)
	N         int    `json:"n"`                   // problem size (required)
	NB        int    `json:"nb,omitempty"`        // block size (default 64)
	Workers   int    `json:"workers,omitempty"`   // native thread groups (default 4)
	P         int    `json:"p,omitempty"`         // process rows (default 1; dist modes 2)
	Q         int    `json:"q,omitempty"`         // process cols (default 1; dist modes 2)
	Seed      uint64 `json:"seed,omitempty"`      // matrix seed (default 1)
	Precision string `json:"precision,omitempty"` // fp64 | mixed (all modes except ft)
	Lookahead string `json:"lookahead,omitempty"` // none | basic | pipelined (dist modes)
	Faults    string `json:"faults,omitempty"`    // fault plan spec (ft only)

	TimeoutMs  int  `json:"timeout_ms,omitempty"`  // per-job deadline (clamped to the server max)
	MaxRetries *int `json:"max_retries,omitempty"` // transient-error retry budget (nil = server default)

	FTTimeoutMs int `json:"ft_timeout_ms,omitempty"` // ft: per-op timeout before a rank is declared failed
	CkptEvery   int `json:"ckpt_every,omitempty"`    // ft: checkpoint period in panel stages
	MaxRestarts int `json:"max_restarts,omitempty"`  // ft: rollback budget
}

// Spec is a validated, normalized job: every field is in range, enums are
// parsed, and defaults are applied. It is what the Runner receives.
type Spec struct {
	Tenant    string
	Mode      Mode
	N, NB     int
	Workers   int
	P, Q      int
	Seed      uint64
	Precision phihpl.PrecisionMode
	Lookahead phihpl.LookaheadMode
	Faults    string
	Plan      *phihpl.FaultPlan
	Timeout   time.Duration
	Retries   int

	FTTimeout   time.Duration
	CkptEvery   int
	MaxRestarts int
}

var tenantRe = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Validate checks js against the server limits and returns the normalized
// Spec. Every failure is a *BadRequestError naming the offending field;
// an unsupported-but-well-formed combination (mixed precision with the
// fault-tolerant mode) is a *BadRequestError with Code "unsupported",
// mirroring cmd/hpl's exit-code-3 contract.
func (js JobSpec) Validate(cfg Config) (Spec, error) {
	sp := Spec{
		Tenant:  js.Tenant,
		N:       js.N,
		NB:      js.NB,
		Workers: js.Workers,
		P:       js.P,
		Q:       js.Q,
		Seed:    js.Seed,
		Faults:  js.Faults,
	}
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if !tenantRe.MatchString(sp.Tenant) {
		return Spec{}, badField("tenant", "must match %s", tenantRe)
	}
	switch Mode(js.Mode) {
	case "", ModeNative:
		sp.Mode = ModeNative
	case ModeDist2D, ModeHybrid2D, ModeFT:
		sp.Mode = Mode(js.Mode)
	default:
		return Spec{}, badField("mode", "unknown mode %q (native | dist2d | hybrid2d | ft)", js.Mode)
	}
	if sp.N < 1 || sp.N > cfg.MaxN {
		return Spec{}, badField("n", "must be in [1, %d]", cfg.MaxN)
	}
	if sp.NB == 0 {
		sp.NB = 64
	}
	if sp.NB < 1 || sp.NB > 4096 {
		return Spec{}, badField("nb", "must be in [1, 4096]")
	}
	if sp.Workers == 0 {
		sp.Workers = 4
	}
	if sp.Workers < 1 || sp.Workers > 256 {
		return Spec{}, badField("workers", "must be in [1, 256]")
	}
	dist := sp.Mode != ModeNative
	if sp.P == 0 {
		sp.P = 1
		if dist {
			sp.P = 2
		}
	}
	if sp.Q == 0 {
		sp.Q = 1
		if dist {
			sp.Q = 2
		}
	}
	if sp.P < 1 || sp.Q < 1 || sp.P*sp.Q > cfg.MaxGrid {
		return Spec{}, badField("p,q", "grid must satisfy 1 <= p*q <= %d", cfg.MaxGrid)
	}
	var err error
	if sp.Precision, err = phihpl.ParsePrecisionMode(defaultStr(js.Precision, "fp64")); err != nil {
		return Spec{}, badField("precision", "%v", err)
	}
	if sp.Precision == phihpl.PrecisionMixed && sp.Mode == ModeFT {
		return Spec{}, &BadRequestError{
			Field: "precision",
			Code:  "unsupported",
			Msg: "precision \"mixed\" cannot be combined with mode \"ft\": the fault-tolerant solver's " +
				"ABFT checksum columns and checkpoints protect FP64 state only, and a mixed FP64 fallback " +
				"re-run would be indistinguishable from a rollback — use mode \"dist2d\", \"hybrid2d\" or " +
				"\"native\" for mixed, or precision \"fp64\" with \"ft\" (same contract as cmd/hpl exit code 3)",
		}
	}
	if sp.Lookahead, err = phihpl.ParseLookaheadMode(defaultStr(js.Lookahead, "pipelined")); err != nil {
		return Spec{}, badField("lookahead", "%v", err)
	}
	if sp.Faults != "" {
		if sp.Mode != ModeFT {
			return Spec{}, &BadRequestError{Field: "faults", Code: "unsupported",
				Msg: "fault plans require mode \"ft\""}
		}
		if sp.Plan, err = phihpl.ParseFaultPlan(sp.Faults); err != nil {
			return Spec{}, badField("faults", "%v", err)
		}
	}
	if js.TimeoutMs < 0 || js.FTTimeoutMs < 0 || js.CkptEvery < 0 || js.MaxRestarts < 0 {
		return Spec{}, badField("timeout_ms", "durations and budgets must be non-negative")
	}
	sp.Timeout = cfg.DefaultTimeout
	if js.TimeoutMs > 0 {
		sp.Timeout = time.Duration(js.TimeoutMs) * time.Millisecond
	}
	if sp.Timeout > cfg.MaxTimeout {
		sp.Timeout = cfg.MaxTimeout // server-enforced ceiling, never a 4xx
	}
	sp.Retries = cfg.DefaultRetries
	if js.MaxRetries != nil {
		if *js.MaxRetries < 0 || *js.MaxRetries > cfg.MaxRetries {
			return Spec{}, badField("max_retries", "must be in [0, %d]", cfg.MaxRetries)
		}
		sp.Retries = *js.MaxRetries
	}
	sp.FTTimeout = time.Duration(js.FTTimeoutMs) * time.Millisecond
	sp.CkptEvery = js.CkptEvery
	sp.MaxRestarts = js.MaxRestarts
	if est := sp.MemEstimate(); est > cfg.MemBudget {
		return Spec{}, badField("n", "estimated footprint %d bytes exceeds the server memory budget %d",
			est, cfg.MemBudget)
	}
	return sp, nil
}

func defaultStr(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

// MemEstimate is the admission gate's rough per-job matrix footprint: the
// FP64 system plus vectors, doubled again for the distributed drivers
// (per-rank local blocks + the root's gathered copy) and once more for
// ABFT checksums and checkpoints. A mixed-precision job additionally
// carries an FP32 shadow of the matrix (half the FP64 bytes — the n²
// float32 mirror for native, the distributed FP32 blocks plus the root's
// gathered FP32 factors for the 2D drivers). Deliberately pessimistic —
// the gate exists to queue jobs rather than OOM, not to pack memory
// tightly.
func (sp Spec) MemEstimate() int64 {
	n := int64(sp.N)
	base := 8 * (n*n + 8*n)
	shadow := int64(0)
	if sp.Precision == phihpl.PrecisionMixed {
		shadow = 4 * n * n
	}
	switch sp.Mode {
	case ModeNative:
		return base + shadow
	case ModeFT:
		return 4 * base // ft+mixed is rejected by Validate; no shadow term
	default: // dist2d, hybrid2d: per-rank blocks + root's gathered copy
		return 3*base + 2*shadow
	}
}

// CacheKey identifies a job's bitwise-deterministic result. Runs with a
// fault plan are excluded (injected faults perturb timing-dependent
// recovery paths), as are the worker/grid-independent knobs proven not to
// change bits (worker count is bitwise invariant, but grid shape is part
// of the result identity via Seconds/FT stats, so it stays in the key).
// An empty key means "do not cache".
func (sp Spec) CacheKey() string {
	if sp.Faults != "" {
		return ""
	}
	return fmt.Sprintf("%s|n=%d|nb=%d|p=%d|q=%d|seed=%d|prec=%s|la=%s",
		sp.Mode, sp.N, sp.NB, sp.P, sp.Q, sp.Seed, sp.Precision, sp.Lookahead)
}

// Event is one entry of a job's progress stream (GET /v1/jobs/{id}/stream).
type Event struct {
	Type    string  `json:"type"` // state | retry | progress | done
	State   State   `json:"state,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Message string  `json:"message,omitempty"`
	Spans   int     `json:"spans,omitempty"`     // trace spans recorded so far
	Elapsed float64 `json:"elapsed_s,omitempty"` // seconds since the job started running
}

// ResultView is the client-facing outcome of a completed solve: the HPL
// verdict and rates, never the solution vector itself (X is dropped to
// keep the server's resident memory bounded).
type ResultView struct {
	N        int                  `json:"n"`
	Residual float64              `json:"residual"`
	Passed   bool                 `json:"passed"`
	Seconds  float64              `json:"seconds"`
	GFLOPS   float64              `json:"gflops"`
	Refine   *phihpl.RefineReport `json:"refine,omitempty"`
	FT       *phihpl.FTStats      `json:"ft,omitempty"`
}

// JobView is the JSON representation of a job (GET /v1/jobs/{id}).
type JobView struct {
	ID       string      `json:"id"`
	Tenant   string      `json:"tenant"`
	Mode     Mode        `json:"mode"`
	State    State       `json:"state"`
	N        int         `json:"n"`
	NB       int         `json:"nb"`
	P        int         `json:"p,omitempty"`
	Q        int         `json:"q,omitempty"`
	Seed     uint64      `json:"seed"`
	Attempts int         `json:"attempts"`
	Cached   bool        `json:"cached,omitempty"` // served from the single-flight cache
	Result   *ResultView `json:"result,omitempty"`
	Error    *ErrorInfo  `json:"error,omitempty"`
}

// job is the server-side record of one admitted submission.
type job struct {
	id       string
	seq      int
	spec     Spec
	key      string // cache key; "" = uncacheable
	memEst   int64
	rec      *trace.Recorder // per-job spans, feeds the progress stream
	follower bool            // attached to another job's in-flight cache entry

	enqueuedAt time.Time // set under Server.mu when the job enters the queue

	mu       sync.Mutex
	state    State
	attempts int
	cached   bool
	result   *ResultView
	errInfo  *ErrorInfo
	started  time.Time
	events   []Event
	subs     []chan Event
	done     chan struct{} // closed exactly once, on the terminal transition
}

func newJob(seq int, sp Spec) *job {
	j := &job{
		id:     fmt.Sprintf("j-%d", seq),
		seq:    seq,
		spec:   sp,
		key:    sp.CacheKey(),
		memEst: sp.MemEstimate(),
		rec:    new(trace.Recorder),
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	j.events = append(j.events, Event{Type: "state", State: StateQueued})
	return j
}

// publishLocked appends e and fans it out; j.mu must be held. Slow
// subscribers lose events rather than block the scheduler.
func (j *job) publishLocked(e Event) {
	j.events = append(j.events, e)
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// setRunning transitions QUEUED→RUNNING for the given attempt. A job
// that is already terminal stays terminal: a force-finalized (preempted)
// job's wedged runner may come back and try to start a retry attempt,
// and that late transition must be a no-op.
func (j *job) setRunning(attempt int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateRunning
	j.attempts = attempt
	if attempt == 1 {
		j.started = time.Now()
	}
	j.publishLocked(Event{Type: "state", State: StateRunning, Attempt: attempt})
}

// noteRetry records a transient failure that will be retried.
func (j *job) noteRetry(attempt int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(Event{Type: "retry", Attempt: attempt, Message: err.Error()})
}

// finish makes the terminal transition. It is idempotent: only the first
// call wins (a drain racing a normal completion must not double-close).
func (j *job) finish(state State, res *ResultView, ei *ErrorInfo, cached bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	j.errInfo = ei
	j.cached = cached
	j.publishLocked(Event{Type: "done", State: state, Attempt: j.attempts})
	close(j.done)
}

// restoreAttempts sets the attempt counter from a journal record so a
// recovered job's view matches its pre-crash one. Only raises.
func (j *job) restoreAttempts(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > j.attempts {
		j.attempts = n
	}
}

// snapshot returns the fields the journal's compaction snapshot needs in
// one consistent read.
func (j *job) snapshot() (State, *ResultView, *ErrorInfo, bool, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.errInfo, j.cached, j.attempts
}

// subscribe returns the events so far plus a channel of future ones;
// call the returned cancel when done reading.
func (j *job) subscribe() (past []Event, ch chan Event, cancel func()) {
	ch = make(chan Event, 64)
	j.mu.Lock()
	past = append(past, j.events...)
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return past, ch, func() {
		j.mu.Lock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
}

// view snapshots the job for JSON.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:       j.id,
		Tenant:   j.spec.Tenant,
		Mode:     j.spec.Mode,
		State:    j.state,
		N:        j.spec.N,
		NB:       j.spec.NB,
		P:        j.spec.P,
		Q:        j.spec.Q,
		Seed:     j.spec.Seed,
		Attempts: j.attempts,
		Cached:   j.cached,
		Result:   j.result,
		Error:    j.errInfo,
	}
}

// currentState returns the state without the full view.
func (j *job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// progressEvent samples the live job for the stream's periodic tick.
func (j *job) progressEvent() Event {
	j.mu.Lock()
	started := j.started
	attempt := j.attempts
	j.mu.Unlock()
	e := Event{Type: "progress", Attempt: attempt, Spans: len(j.rec.Spans())}
	if !started.IsZero() {
		e.Elapsed = time.Since(started).Seconds()
	}
	return e
}
