package server

import (
	"context"
	"encoding/json"
	"time"

	"phihpl/internal/journal"
)

// walRecord is one frame of the server's write-ahead journal: the job
// lifecycle (accept → run → end) plus result-cache inserts and boot
// markers. The journal is the source of truth for crash recovery — a
// record is fsynced before the transition it describes becomes visible
// to clients, so replaying the journal rebuilds exactly the state any
// client could have observed.
//
// Record types:
//
//	boot    one per server start; Gen is the monotonically increasing
//	        boot generation (recovery stamps it into InterruptedError)
//	accept  a submission was admitted: ID, Seq, the normalized wire
//	        Spec, and whether it attached to an in-flight cache entry
//	run     an attempt started (Attempt); presence without a matching
//	        end is how recovery detects running-at-crash jobs
//	end     the terminal transition: State, Result/Error, Cached,
//	        and the final Attempt count (for byte-identical restore)
//	cache   a deterministic result entered the single-flight cache
//	        under Key; replay restores instant cache hits
type walRecord struct {
	T        string      `json:"t"`
	Gen      int         `json:"gen,omitempty"`      // boot
	ID       string      `json:"id,omitempty"`       // accept | run | end
	Seq      int         `json:"seq,omitempty"`      // accept
	Spec     *JobSpec    `json:"spec,omitempty"`     // accept
	Follower bool        `json:"follower,omitempty"` // accept
	Attempt  int         `json:"attempt,omitempty"`  // run | end
	State    State       `json:"state,omitempty"`    // end | cache
	Cached   bool        `json:"cached,omitempty"`   // end
	Result   *ResultView `json:"result,omitempty"`   // end | cache
	Error    *ErrorInfo  `json:"error,omitempty"`    // end | cache
	Key      string      `json:"key,omitempty"`      // cache
}

// wireSpec projects a validated Spec back onto the wire format, so an
// accept record replays through the same Validate path a live submission
// took. Round-tripping through Validate (rather than persisting the
// normalized Spec) means recovered jobs are re-checked against the
// *current* server limits — a job that no longer fits is aborted with a
// typed reason instead of silently running outside the gate.
func (sp Spec) wireSpec() *JobSpec {
	js := &JobSpec{
		Tenant:      sp.Tenant,
		Mode:        string(sp.Mode),
		N:           sp.N,
		NB:          sp.NB,
		Workers:     sp.Workers,
		P:           sp.P,
		Q:           sp.Q,
		Seed:        sp.Seed,
		Precision:   sp.Precision.String(),
		Lookahead:   sp.Lookahead.String(),
		Faults:      sp.Faults,
		TimeoutMs:   int(sp.Timeout / time.Millisecond),
		FTTimeoutMs: int(sp.FTTimeout / time.Millisecond),
		CkptEvery:   sp.CkptEvery,
		MaxRestarts: sp.MaxRestarts,
	}
	r := sp.Retries
	js.MaxRetries = &r
	return js
}

// looseSpec builds an unvalidated Spec from a recovered wire spec whose
// re-validation failed (the server's limits shrank across the restart).
// The job built from it goes straight to a terminal state — the spec is
// only needed for the client-facing view, never for scheduling.
func looseSpec(js *JobSpec) Spec {
	sp := Spec{
		Tenant: js.Tenant, Mode: Mode(js.Mode),
		N: js.N, NB: js.NB, Workers: js.Workers,
		P: js.P, Q: js.Q, Seed: js.Seed, Faults: js.Faults,
	}
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	return sp
}

// RecoveryStats summarizes one journal replay (WaitRecovered returns it;
// cmd/hplserver prints it as the recovery banner).
type RecoveryStats struct {
	Generation       int               // this boot's generation
	RestoredTerminal int               // terminal job records restored verbatim
	RestoredCache    int               // single-flight cache entries restored
	Requeued         int               // queued-at-crash jobs re-enqueued
	Interrupted      int               // running-at-crash (or follower) jobs aborted
	Invalid          int               // recovered jobs no longer admissible under current limits
	Malformed        int               // records dropped as undecodable (journal-level damage is in Journal)
	Journal          journal.ScanStats // frame-level repair stats from the open scan
}

// logLocked appends one record to the journal (fsync-on-commit). Callers
// hold s.mu; the append therefore serializes with the state transition
// it describes and is durable before that transition is visible to any
// client. A failed append (disk full, closed journal during shutdown) is
// counted, not fatal — the server keeps serving from memory.
func (s *Server) logLocked(r walRecord) {
	if s.jn == nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		s.mJournalDropped.Inc()
		return
	}
	if err := s.jn.Append(b); err != nil {
		s.mJournalDropped.Inc()
		return
	}
	s.walAppends++
}

// maybeCompactLocked runs snapshot-then-rotate compaction once enough
// records accumulated. Called only at quiescent points (end of Submit,
// end of finishLocked, after a run record) — never mid-transition, so
// the snapshot always captures a replayable state.
func (s *Server) maybeCompactLocked() {
	if s.jn == nil || s.cfg.CompactEvery <= 0 || s.walAppends < int64(s.cfg.CompactEvery) {
		return
	}
	s.walAppends = 0
	var snap [][]byte
	add := func(r walRecord) {
		if b, err := json.Marshal(r); err == nil {
			snap = append(snap, b)
		}
	}
	add(walRecord{T: "boot", Gen: s.generation})
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if j == nil {
			continue
		}
		add(walRecord{T: "accept", ID: j.id, Seq: j.seq, Spec: j.spec.wireSpec(), Follower: j.follower})
		state, view, ei, cached, attempts := j.snapshot()
		switch {
		case state.Terminal():
			add(walRecord{T: "end", ID: j.id, State: state, Result: view, Error: ei, Cached: cached, Attempt: attempts})
		case attempts > 0:
			add(walRecord{T: "run", ID: j.id, Attempt: attempts})
		}
	}
	for key, e := range s.entries {
		if e.complete {
			add(walRecord{T: "cache", Key: key, State: e.state, Result: e.result, Error: e.errInfo})
		}
	}
	_ = s.jn.Compact(snap) // failure counted inside the journal; old log remains valid
}

// recoverFromJournal is the startup replay: rebuild the job table and
// result cache from the pre-crash records, then settle the survivors —
// queued jobs are re-enqueued (legally overshooting QueueDepth for one
// scheduling round rather than 429-ing recovered work), running-at-crash
// and follower jobs are aborted with a typed InterruptedError carrying
// the new boot generation. Runs on its own goroutine; until it closes
// recoveredCh the server answers 503 "recovering" to submissions and
// /readyz.
func (s *Server) recoverFromJournal() {
	defer close(s.recoveredCh)
	if s.cfg.recoveryGate != nil {
		<-s.cfg.recoveryGate
	}
	recs := s.jn.TakeRecords()

	s.mu.Lock()
	defer s.mu.Unlock()

	type replayJob struct {
		j       *job
		ran     bool
		invalid bool
		reason  string
	}
	byID := map[string]*replayJob{}
	var order []string

	for _, raw := range recs {
		var r walRecord
		if err := json.Unmarshal(raw, &r); err != nil {
			s.recovery.Malformed++
			continue
		}
		switch r.T {
		case "boot":
			if r.Gen > s.generation {
				s.generation = r.Gen
			}
		case "accept":
			if r.Spec == nil || r.ID == "" || byID[r.ID] != nil {
				s.recovery.Malformed++
				continue
			}
			rj := &replayJob{}
			sp, err := r.Spec.Validate(s.cfg)
			if err != nil {
				sp = looseSpec(r.Spec)
				rj.invalid, rj.reason = true, err.Error()
			}
			j := newJob(r.Seq, sp)
			j.id = r.ID
			j.follower = r.Follower
			rj.j = j
			byID[r.ID] = rj
			order = append(order, r.ID)
			if r.Seq > s.seq {
				s.seq = r.Seq
			}
			s.registerLocked(j)
		case "run":
			if rj := byID[r.ID]; rj != nil {
				rj.ran = true
				rj.j.restoreAttempts(r.Attempt)
			} else {
				s.recovery.Malformed++
			}
		case "end":
			rj := byID[r.ID]
			if rj == nil {
				s.recovery.Malformed++
				continue
			}
			rj.j.restoreAttempts(r.Attempt)
			rj.j.finish(r.State, r.Result, r.Error, r.Cached)
			s.recovery.RestoredTerminal++
			s.mRecoveredTerminal.Inc()
		case "cache":
			if r.Key == "" {
				s.recovery.Malformed++
				continue
			}
			s.entries[r.Key] = &cacheEntry{complete: true, state: r.State, result: r.Result, errInfo: r.Error}
			s.recovery.RestoredCache++
		default:
			s.recovery.Malformed++
		}
	}

	s.generation++
	s.recovery.Generation = s.generation
	s.recovery.Journal = s.jn.ScanStats()
	s.logLocked(walRecord{T: "boot", Gen: s.generation})

	for _, id := range order {
		rj := byID[id]
		j := rj.j
		if j.currentState().Terminal() {
			continue
		}
		switch {
		case rj.invalid:
			s.recovery.Invalid++
			ei := &ErrorInfo{
				Kind:       "interrupted",
				Message:    "recovered job is no longer admissible under the restarted server's limits: " + rj.reason,
				Generation: s.generation,
			}
			s.finishLocked(j, StateAborted, nil, ei, false)
		case rj.ran || j.follower:
			// RUNNING at crash (or attached to an in-flight leader that was):
			// the half-run solve is untrustworthy; abort with the typed
			// reason so the caller knows a resubmit re-runs it.
			s.recovery.Interrupted++
			s.mRecoveredInterrupted.Inc()
			s.finishLocked(j, StateAborted, nil, encodeError(&InterruptedError{Generation: s.generation}), false)
		default:
			s.requeueRecoveredLocked(j)
		}
	}

	if s.draining || s.closed {
		// A drain raced recovery: recovered queued jobs abort exactly like
		// live queued jobs would.
		ei := &ErrorInfo{Kind: "aborted", Message: "server draining: job aborted before it ran"}
		for _, j := range s.popAllQueuedLocked() {
			s.finishLocked(j, StateAborted, nil, ei, false)
		}
	}
	s.maybeCompactLocked()
	s.recovering = false
	s.cond.Broadcast()
}

// requeueRecoveredLocked puts a queued-at-crash job back on its tenant
// queue. Recovered jobs bypass the QueueDepth bound — rejecting work the
// server already accepted (and journaled) with a 429 would break the
// accept contract; the queue instead runs over-depth for one scheduling
// round while new submissions see 429 with a clamped Retry-After.
func (s *Server) requeueRecoveredLocked(j *job) {
	if j.key != "" {
		if e := s.entries[j.key]; e != nil {
			if e.complete {
				// An identical spec completed before the crash: instant hit.
				s.mCacheHits.Inc()
				s.finishLocked(j, e.state, e.result, e.errInfo, true)
				return
			}
			if e.leader != nil {
				e.followers = append(e.followers, j)
				return
			}
			e.leader = j
		} else {
			s.entries[j.key] = &cacheEntry{leader: j}
		}
	}
	if _, ok := s.queues[j.spec.Tenant]; !ok && !containsStr(s.order, j.spec.Tenant) {
		s.order = append(s.order, j.spec.Tenant)
		s.credit[j.spec.Tenant] = s.weightFor(j.spec.Tenant)
	}
	s.queues[j.spec.Tenant] = append(s.queues[j.spec.Tenant], j)
	s.queuedN++
	s.gQueued.Set(float64(s.queuedN))
	s.recovery.Requeued++
	s.mRecoveredRequeued.Inc()
	j.enqueuedAt = time.Now()
	s.cond.Broadcast()
}

// WaitRecovered blocks until journal replay has settled every recovered
// job (immediately for a journal-less server) and returns the stats.
func (s *Server) WaitRecovered(ctx context.Context) (RecoveryStats, error) {
	select {
	case <-s.recoveredCh:
	case <-ctx.Done():
		return RecoveryStats{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery, nil
}
