package server

import (
	"errors"
	"strings"
	"testing"

	"phihpl"
)

// TestMixedDistValidation: the stale native-only guard is gone — mixed
// precision is accepted for dist2d and hybrid2d (and still for native),
// normalized into the Spec, and refused for ft with a diagnostic naming
// both the reason and the supported alternatives.
func TestMixedDistValidation(t *testing.T) {
	cfg := testConfig().withDefaults()
	for _, mode := range []string{"native", "dist2d", "hybrid2d"} {
		sp, err := JobSpec{N: 64, Mode: mode, Precision: "mixed"}.Validate(cfg)
		if err != nil {
			t.Fatalf("mode %s with mixed rejected: %v", mode, err)
		}
		if sp.Precision != phihpl.PrecisionMixed {
			t.Errorf("mode %s: normalized precision = %v, want mixed", mode, sp.Precision)
		}
		if !strings.Contains(sp.CacheKey(), "prec=mixed") {
			t.Errorf("mode %s: cache key %q must carry the precision", mode, sp.CacheKey())
		}
	}

	_, err := JobSpec{N: 64, Mode: "ft", Precision: "mixed"}.Validate(cfg)
	var bre *BadRequestError
	if !errors.As(err, &bre) || bre.Code != "unsupported" || bre.Field != "precision" {
		t.Fatalf("ft+mixed: err = %v, want *BadRequestError{Field: precision, Code: unsupported}", err)
	}
	for _, want := range []string{"ft", "ABFT", "dist2d", "fp64"} {
		if !strings.Contains(bre.Msg, want) {
			t.Errorf("ft+mixed diagnostic %q should mention %q", bre.Msg, want)
		}
	}
}

// TestMemEstimateFormula pins the admission gate's footprint arithmetic,
// FP32 shadow included: base = 8(n²+8n) bytes for the FP64 system,
// shadow = 4n² for the mixed FP32 mirror; native = base(+shadow),
// dist2d/hybrid2d = 3·base(+2·shadow: per-rank blocks and the root's
// gathered factors), ft = 4·base (mixed is rejected before estimating).
func TestMemEstimateFormula(t *testing.T) {
	const n = 100
	base := int64(8 * (n*n + 8*n))
	shadow := int64(4 * n * n)
	for _, tc := range []struct {
		name string
		sp   Spec
		want int64
	}{
		{"native fp64", Spec{Mode: ModeNative, N: n}, base},
		{"native mixed", Spec{Mode: ModeNative, N: n, Precision: phihpl.PrecisionMixed}, base + shadow},
		{"dist2d fp64", Spec{Mode: ModeDist2D, N: n}, 3 * base},
		{"dist2d mixed", Spec{Mode: ModeDist2D, N: n, Precision: phihpl.PrecisionMixed}, 3*base + 2*shadow},
		{"hybrid2d fp64", Spec{Mode: ModeHybrid2D, N: n}, 3 * base},
		{"hybrid2d mixed", Spec{Mode: ModeHybrid2D, N: n, Precision: phihpl.PrecisionMixed}, 3*base + 2*shadow},
		{"ft fp64", Spec{Mode: ModeFT, N: n}, 4 * base},
	} {
		if got := tc.sp.MemEstimate(); got != tc.want {
			t.Errorf("%s: MemEstimate = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMixedAdmissionUsesShadow: a memory budget that admits the FP64
// footprint of a dist2d job but not its mixed twin must reject only the
// mixed submission — the gate sees the FP32 shadow.
func TestMixedAdmissionUsesShadow(t *testing.T) {
	const n = 64
	fp64Est := Spec{Mode: ModeDist2D, N: n}.MemEstimate()
	mixedEst := Spec{Mode: ModeDist2D, N: n, Precision: phihpl.PrecisionMixed}.MemEstimate()
	if mixedEst <= fp64Est {
		t.Fatalf("mixed estimate %d must exceed fp64 estimate %d", mixedEst, fp64Est)
	}
	cfg := testConfig().withDefaults()
	cfg.MemBudget = (fp64Est + mixedEst) / 2

	if _, err := (JobSpec{N: n, Mode: "dist2d", P: 2, Q: 2}).Validate(cfg); err != nil {
		t.Fatalf("fp64 job under the budget rejected: %v", err)
	}
	_, err := (JobSpec{N: n, Mode: "dist2d", P: 2, Q: 2, Precision: "mixed"}).Validate(cfg)
	var bre *BadRequestError
	if !errors.As(err, &bre) {
		t.Fatalf("mixed job over the budget: err = %v, want *BadRequestError", err)
	}
	if !strings.Contains(bre.Msg, "footprint") {
		t.Errorf("diagnostic %q should name the footprint", bre.Msg)
	}
}
