package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phihpl"
	"phihpl/internal/cluster"
	"phihpl/internal/testutil"
	"phihpl/internal/trace"
)

// testConfig returns a config tuned for fast, deterministic tests.
func testConfig() Config {
	return Config{
		QueueDepth:     8,
		Concurrency:    2,
		TenantCap:      1,
		MaxN:           512,
		DefaultRetries: 0,
		RetryBase:      time.Millisecond,
		DefaultTimeout: 30 * time.Second,
		StreamInterval: 10 * time.Millisecond,
	}
}

// passRunner returns an immediately-passing dummy result.
func passRunner(_ context.Context, sp Spec, _ *trace.Recorder) (phihpl.SolveResult, error) {
	return phihpl.SolveResult{N: sp.N, Residual: 1e-3, Passed: true}, nil
}

// gatedRunner blocks until the gate closes (or ctx is done), then passes.
func gatedRunner(gate chan struct{}) RunnerFunc {
	return func(ctx context.Context, sp Spec, _ *trace.Recorder) (phihpl.SolveResult, error) {
		select {
		case <-gate:
			return phihpl.SolveResult{N: sp.N, Residual: 1e-3, Passed: true}, nil
		case <-ctx.Done():
			return phihpl.SolveResult{}, ctx.Err()
		}
	}
}

func waitState(t *testing.T, j *job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.currentState() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s: state %s, want %s", j.id, j.currentState(), want)
}

func waitTerminal(t *testing.T, j *job) State {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state (now %s)", j.id, j.currentState())
	}
	return j.currentState()
}

func mustSubmit(t *testing.T, s *Server, js JobSpec) *job {
	t.Helper()
	j, ae := s.Submit(js)
	if ae != nil {
		t.Fatalf("submit: %v (status %d)", ae.msg, ae.status)
	}
	return j
}

func TestValidationTypedErrors(t *testing.T) {
	defer testutil.NoLeaks(t)()
	s := New(testConfig())
	defer s.Close()
	mixed := "mixed"
	cases := []struct {
		name   string
		js     JobSpec
		status int
		code   string
	}{
		{"zero n", JobSpec{N: 0}, 400, "invalid"},
		{"n too large", JobSpec{N: 100000}, 400, "invalid"},
		{"bad mode", JobSpec{N: 64, Mode: "quantum"}, 400, "invalid"},
		{"bad nb", JobSpec{N: 64, NB: -4}, 400, "invalid"},
		{"bad tenant", JobSpec{N: 64, Tenant: "no spaces!"}, 400, "invalid"},
		{"grid too big", JobSpec{N: 64, Mode: "dist2d", P: 8, Q: 8}, 400, "invalid"},
		{"mixed on ft", JobSpec{N: 64, Mode: "ft", Precision: mixed}, 400, "unsupported"},
		{"faults on native", JobSpec{N: 64, Faults: "seed=1;drop=0.1"}, 400, "unsupported"},
		{"bad fault plan", JobSpec{N: 64, Mode: "ft", Faults: "garbage==="}, 400, "invalid"},
		{"bad precision", JobSpec{N: 64, Precision: "fp8"}, 400, "invalid"},
		{"bad lookahead", JobSpec{N: 64, Lookahead: "psychic"}, 400, "invalid"},
	}
	for _, tc := range cases {
		j, ae := s.Submit(tc.js)
		if ae == nil {
			t.Errorf("%s: admitted as %s, want rejection", tc.name, j.id)
			continue
		}
		if ae.status != tc.status || ae.code != tc.code {
			t.Errorf("%s: got status=%d code=%q, want %d/%q (%s)",
				tc.name, ae.status, ae.code, tc.status, tc.code, ae.msg)
		}
	}
	if got := s.Registry().Counter("server.rejected_invalid").Value(); got != int64(len(cases)) {
		t.Errorf("rejected_invalid = %d, want %d", got, len(cases))
	}
}

// TestQueueFull429 exercises the admission-control path end to end over
// HTTP: a full queue answers 429 with Retry-After and a REJECTED body,
// and admitted jobs still finish once the gate opens.
func TestQueueFull429(t *testing.T) {
	defer testutil.NoLeaks(t)()
	gate := make(chan struct{})
	cfg := testConfig()
	cfg.QueueDepth = 2
	cfg.Concurrency = 1
	cfg.Runner = gatedRunner(gate)
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(tenant string) *http.Response {
		t.Helper()
		body := `{"mode":"native","n":64,"seed":` + fmt.Sprint(time.Now().UnixNano()) + `}`
		req, _ := http.NewRequest("POST", ts.URL+"/v1/solve", strings.NewReader(body))
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		return resp
	}
	decode := func(resp *http.Response, v any) {
		t.Helper()
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}

	// One running + two queued fills the world (depth 2, concurrency 1).
	var first JobView
	resp := post("a")
	decode(resp, &first)
	waitRunning := func() {
		j, _ := s.Job(first.ID)
		waitState(t, j, StateRunning)
	}
	waitRunning()
	var admitted []string
	admitted = append(admitted, first.ID)
	for i := 0; i < 2; i++ {
		var jv JobView
		resp := post("a")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: status %d", i, resp.StatusCode)
		}
		decode(resp, &jv)
		admitted = append(admitted, jv.ID)
	}

	resp = post("b")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
	var eb errorBody
	decode(resp, &eb)
	if eb.State != StateRejected || eb.Error == nil || eb.Error.Kind != "queue_full" {
		t.Errorf("429 body = %+v, want REJECTED/queue_full", eb)
	}
	if got := s.Registry().Counter("server.rejected_queue_full").Value(); got != 1 {
		t.Errorf("rejected_queue_full = %d, want 1", got)
	}

	close(gate)
	for _, id := range admitted {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := waitTerminal(t, j); st != StatePassed {
			t.Errorf("job %s: %s, want PASSED", id, st)
		}
	}
}

// TestTenantFairness holds the starvation guarantee: a heavy tenant that
// floods the queue can neither starve a light tenant's dequeue (WRR) nor
// hold every worker (per-tenant running cap).
func TestTenantFairness(t *testing.T) {
	defer testutil.NoLeaks(t)()

	t.Run("wrr dequeue", func(t *testing.T) {
		cfg := testConfig()
		cfg.QueueDepth = 32
		cfg.Concurrency = 1
		cfg.Runner = func(ctx context.Context, sp Spec, _ *trace.Recorder) (phihpl.SolveResult, error) {
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
				return phihpl.SolveResult{}, ctx.Err()
			}
			return phihpl.SolveResult{N: sp.N, Passed: true, Residual: 1e-3}, nil
		}
		s := New(cfg)
		defer s.Close()

		var heavy []*job
		for i := 0; i < 8; i++ {
			heavy = append(heavy, mustSubmit(t, s, JobSpec{Tenant: "heavy", N: 64, Seed: uint64(i + 1)}))
		}
		light := mustSubmit(t, s, JobSpec{Tenant: "light", N: 64, Seed: 100})
		if st := waitTerminal(t, light); st != StatePassed {
			t.Fatalf("light job: %s", st)
		}
		done := 0
		for _, h := range heavy {
			if h.currentState().Terminal() {
				done++
			}
		}
		// With one worker and round-robin credits the light job runs after
		// at most the in-flight heavy job plus one more.
		if done > 2 {
			t.Errorf("light tenant waited behind %d heavy jobs; starvation", done)
		}
	})

	t.Run("running cap", func(t *testing.T) {
		heavyGate := make(chan struct{})
		lightGate := make(chan struct{})
		cfg := testConfig()
		cfg.Concurrency = 2
		cfg.TenantCap = 1
		cfg.Runner = func(ctx context.Context, sp Spec, _ *trace.Recorder) (phihpl.SolveResult, error) {
			g := heavyGate
			if sp.Tenant == "light" {
				g = lightGate
			}
			select {
			case <-g:
				return phihpl.SolveResult{N: sp.N, Passed: true, Residual: 1e-3}, nil
			case <-ctx.Done():
				return phihpl.SolveResult{}, ctx.Err()
			}
		}
		s := New(cfg)
		defer s.Close()

		h1 := mustSubmit(t, s, JobSpec{Tenant: "heavy", N: 64, Seed: 1})
		h2 := mustSubmit(t, s, JobSpec{Tenant: "heavy", N: 64, Seed: 2})
		waitState(t, h1, StateRunning)
		// The cap (1) keeps the second heavy job queued even with a free
		// worker...
		time.Sleep(20 * time.Millisecond)
		if st := h2.currentState(); st != StateQueued {
			t.Fatalf("second heavy job is %s; per-tenant cap not enforced", st)
		}
		// ...and the light tenant takes that worker immediately.
		l := mustSubmit(t, s, JobSpec{Tenant: "light", N: 64, Seed: 3})
		waitState(t, l, StateRunning)
		close(lightGate)
		if st := waitTerminal(t, l); st != StatePassed {
			t.Fatalf("light job: %s", st)
		}
		close(heavyGate)
		waitTerminal(t, h1)
		waitTerminal(t, h2)
	})
}

// TestDrainMidJob exercises the SIGTERM state machine: admission stops,
// queued jobs abort immediately, the running job is cancelled at the
// drain deadline, readiness flips, and the server quiesces with no leaks.
func TestDrainMidJob(t *testing.T) {
	defer testutil.NoLeaks(t)()
	cfg := testConfig()
	cfg.Concurrency = 1
	cfg.Runner = gatedRunner(make(chan struct{})) // never opens: only ctx ends it
	s := New(cfg)

	running := mustSubmit(t, s, JobSpec{Tenant: "a", N: 64, Seed: 1})
	waitState(t, running, StateRunning)
	queued := mustSubmit(t, s, JobSpec{Tenant: "a", N: 64, Seed: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("drain took %s; want prompt cancellation after the 100ms budget", d)
	}
	if s.Ready() {
		t.Error("server still ready after drain")
	}
	if st := queued.currentState(); st != StateAborted {
		t.Errorf("queued job: %s, want ABORTED", st)
	}
	if st := running.currentState(); st != StateAborted {
		t.Errorf("running job: %s, want ABORTED", st)
	}
	if _, ae := s.Submit(JobSpec{N: 64}); ae == nil || ae.status != 503 {
		t.Errorf("post-drain submit: %+v, want 503", ae)
	}
	if v := s.Registry().Counter("server.jobs_aborted").Value(); v != 2 {
		t.Errorf("jobs_aborted = %d, want 2", v)
	}
}

// TestSingleFlightCache floods the server with concurrent identical
// requests: exactly one solve runs, everyone gets the identical PASSED
// result, and the hit/join counters account for the other 99.
func TestSingleFlightCache(t *testing.T) {
	defer testutil.NoLeaks(t)()
	var calls atomic.Int64
	cfg := testConfig()
	cfg.QueueDepth = 4 // followers must not consume queue slots
	cfg.Runner = func(ctx context.Context, sp Spec, _ *trace.Recorder) (phihpl.SolveResult, error) {
		calls.Add(1)
		select {
		case <-time.After(30 * time.Millisecond):
		case <-ctx.Done():
			return phihpl.SolveResult{}, ctx.Err()
		}
		return phihpl.SolveResult{N: sp.N, Passed: true, Residual: 4.2e-3}, nil
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 100
	body := `{"mode":"native","n":128,"nb":32,"seed":7}`
	ids := make([]string, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			var jv JobView
			if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
				errs <- err
				return
			}
			ids[i] = jv.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := waitTerminal(t, j); st != StatePassed {
			t.Fatalf("job %s: %s, want PASSED", id, st)
		}
		v := j.view()
		if v.Result == nil || v.Result.Residual != 4.2e-3 {
			t.Fatalf("job %s: result %+v, want the leader's exact residual", id, v.Result)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("runner ran %d times for %d identical requests, want 1", got, clients)
	}
	reg := s.Registry()
	hits := reg.Counter("server.cache_hits").Value()
	joins := reg.Counter("server.cache_inflight_joins").Value()
	if hits+joins != clients-1 {
		t.Errorf("cache hits(%d) + joins(%d) = %d, want %d", hits, joins, hits+joins, clients-1)
	}

	// A later identical submission is a pure cache hit: 200, terminal,
	// flagged cached, still exactly one solve.
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cache-hit status = %d, want 200", resp.StatusCode)
	}
	var jv JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatal(err)
	}
	if jv.State != StatePassed || !jv.Cached {
		t.Errorf("cache-hit view = %+v, want PASSED+cached", jv)
	}
	if calls.Load() != 1 {
		t.Errorf("cache hit re-ran the solve (%d calls)", calls.Load())
	}
}

// TestRetryBudget drives the transient-error policy: typed ErrTimeout
// failures are retried with backoff until they succeed or the budget is
// exhausted; deterministic failures are not retried.
func TestRetryBudget(t *testing.T) {
	defer testutil.NoLeaks(t)()

	t.Run("recovers", func(t *testing.T) {
		var calls atomic.Int64
		cfg := testConfig()
		cfg.Runner = func(ctx context.Context, sp Spec, _ *trace.Recorder) (phihpl.SolveResult, error) {
			if calls.Add(1) <= 2 {
				return phihpl.SolveResult{}, fmt.Errorf("broadcast stage: %w", cluster.ErrTimeout)
			}
			return phihpl.SolveResult{N: sp.N, Passed: true, Residual: 1e-3}, nil
		}
		s := New(cfg)
		defer s.Close()
		five := 5
		j := mustSubmit(t, s, JobSpec{N: 64, MaxRetries: &five})
		if st := waitTerminal(t, j); st != StatePassed {
			t.Fatalf("job: %s, want PASSED after retries", st)
		}
		if v := j.view(); v.Attempts != 3 {
			t.Errorf("attempts = %d, want 3", v.Attempts)
		}
		if got := s.Registry().Counter("server.retries").Value(); got != 2 {
			t.Errorf("retries = %d, want 2", got)
		}
	})

	t.Run("budget exhausted", func(t *testing.T) {
		var calls atomic.Int64
		cfg := testConfig()
		cfg.Runner = func(context.Context, Spec, *trace.Recorder) (phihpl.SolveResult, error) {
			calls.Add(1)
			return phihpl.SolveResult{}, fmt.Errorf("ack: %w", cluster.ErrTimeout)
		}
		s := New(cfg)
		defer s.Close()
		two := 2
		j := mustSubmit(t, s, JobSpec{N: 64, MaxRetries: &two})
		if st := waitTerminal(t, j); st != StateFailed {
			t.Fatalf("job: %s, want FAILED", st)
		}
		if got := calls.Load(); got != 3 {
			t.Errorf("attempts = %d, want 1 + 2 retries", got)
		}
		v := j.view()
		if v.Error == nil || v.Error.Kind != "timeout" || !v.Error.Transient {
			t.Errorf("error = %+v, want transient timeout", v.Error)
		}
	})

	t.Run("deterministic failure not retried", func(t *testing.T) {
		var calls atomic.Int64
		cfg := testConfig()
		cfg.Runner = func(context.Context, Spec, *trace.Recorder) (phihpl.SolveResult, error) {
			calls.Add(1)
			return phihpl.SolveResult{}, &phihpl.SingularError{Col: 17}
		}
		s := New(cfg)
		defer s.Close()
		five := 5
		j := mustSubmit(t, s, JobSpec{N: 64, MaxRetries: &five})
		if st := waitTerminal(t, j); st != StateFailed {
			t.Fatalf("job: %s, want FAILED", st)
		}
		if calls.Load() != 1 {
			t.Errorf("singular matrix retried %d times; deterministic errors must not burn budget", calls.Load()-1)
		}
		if v := j.view(); v.Error == nil || v.Error.Kind != "singular" || v.Error.Column == nil || *v.Error.Column != 17 {
			t.Errorf("error = %+v, want singular col 17", v.Error)
		}
	})
}

// TestStreamEvents reads the SSE progress stream: history replay, live
// progress ticks while running, and the terminal done event.
func TestStreamEvents(t *testing.T) {
	defer testutil.NoLeaks(t)()
	gate := make(chan struct{})
	cfg := testConfig()
	cfg.Runner = gatedRunner(gate)
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := mustSubmit(t, s, JobSpec{N: 64, Seed: 1})
	waitState(t, j, StateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}

	go func() {
		time.Sleep(50 * time.Millisecond) // let progress ticks accumulate
		close(gate)
	}()

	var types []string
	var last Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		types = append(types, e.Type)
		last = e
		if e.Type == "done" {
			break
		}
	}
	joined := strings.Join(types, ",")
	if !strings.Contains(joined, "state") {
		t.Errorf("stream %v missing state events", types)
	}
	if !strings.Contains(joined, "progress") {
		t.Errorf("stream %v missing progress ticks", types)
	}
	if last.Type != "done" || last.State != StatePassed {
		t.Errorf("terminal event = %+v, want done/PASSED", last)
	}
}

// TestPanicIsolation: a panicking solve yields a FAILED job with the
// typed panic payload; the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	defer testutil.NoLeaks(t)()
	cfg := testConfig()
	cfg.Runner = func(ctx context.Context, sp Spec, rec *trace.Recorder) (phihpl.SolveResult, error) {
		if sp.Seed == 666 {
			panic("solver exploded: tile 42")
		}
		return passRunner(ctx, sp, rec)
	}
	s := New(cfg)
	defer s.Close()

	bad := mustSubmit(t, s, JobSpec{N: 64, Seed: 666})
	if st := waitTerminal(t, bad); st != StateFailed {
		t.Fatalf("panicking job: %s, want FAILED", st)
	}
	v := bad.view()
	if v.Error == nil || v.Error.Kind != "panic" || v.Error.Panic == nil {
		t.Fatalf("error = %+v, want typed panic", v.Error)
	}
	if v.Error.Panic.Value != "solver exploded: tile 42" {
		t.Errorf("panic value %q mangled", v.Error.Panic.Value)
	}
	if v.Error.Panic.Stack == "" {
		t.Error("panic stack lost")
	}
	if got := s.Registry().Counter("server.contained_panics").Value(); got != 1 {
		t.Errorf("contained_panics = %d, want 1", got)
	}

	// The server survived: the next job runs normally.
	ok := mustSubmit(t, s, JobSpec{N: 64, Seed: 1})
	if st := waitTerminal(t, ok); st != StatePassed {
		t.Errorf("post-panic job: %s, want PASSED", st)
	}
}

// TestRealSolves drives the default runner through the facade for every
// mode the API accepts, end to end over HTTP.
func TestRealSolves(t *testing.T) {
	defer testutil.NoLeaks(t)()
	cfg := testConfig()
	cfg.Concurrency = 2
	cfg.TenantCap = 2
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []string{
		`{"mode":"native","n":64,"nb":16,"workers":2,"seed":1}`,
		`{"mode":"native","n":96,"nb":16,"workers":2,"seed":2,"precision":"mixed"}`,
		`{"mode":"dist2d","n":48,"nb":16,"p":2,"q":2,"seed":3}`,
		`{"mode":"dist2d","n":64,"nb":16,"p":2,"q":2,"seed":5,"precision":"mixed"}`,
		`{"mode":"hybrid2d","n":64,"nb":16,"p":2,"q":2,"seed":6,"precision":"mixed"}`,
		`{"mode":"ft","n":48,"nb":16,"p":2,"q":2,"seed":4,"faults":"seed=9;drop=0.05"}`,
	}
	var ids []string
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var jv JobView
		err = json.NewDecoder(resp.Body).Decode(&jv)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("%s: status %d", body, resp.StatusCode)
		}
		ids = append(ids, jv.ID)
	}
	for i, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st := waitTerminal(t, j); st != StatePassed {
			t.Fatalf("case %d (%s): %s, want PASSED: %+v", i, cases[i], st, j.view().Error)
		}
		v := j.view()
		if v.Result == nil || !v.Result.Passed || v.Result.Residual <= 0 {
			t.Errorf("case %d: result %+v, want a real residual verdict", i, v.Result)
		}
	}
	// The mixed job reports its refinement record through the API.
	var mixedSeen bool
	for _, jv := range s.Jobs() {
		if jv.Result != nil && jv.Result.Refine != nil {
			mixedSeen = true
		}
	}
	if !mixedSeen {
		t.Error("no job carried a mixed-precision refine report")
	}
}

// TestHealthEndpoints covers /healthz, /readyz and /metrics plumbing.
func TestHealthEndpoints(t *testing.T) {
	defer testutil.NoLeaks(t)()
	cfg := testConfig()
	cfg.Runner = passRunner
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Errorf("readyz: %d", resp.StatusCode)
	}
	j := mustSubmit(t, s, JobSpec{N: 64})
	waitTerminal(t, j)
	if resp, body := get("/metrics"); resp.StatusCode != 200 || !strings.Contains(body, "server.jobs_passed") {
		t.Errorf("metrics JSON: %d %q", resp.StatusCode, body)
	}
	if _, body := get("/metrics?format=text"); !strings.Contains(body, "server.submitted") {
		t.Errorf("metrics text missing counters: %q", body)
	}
	if resp, _ := get("/v1/jobs/nope"); resp.StatusCode != 404 {
		t.Errorf("missing job: %d, want 404", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d, want 503", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Errorf("healthz after drain: %d, want 200 (process alive)", resp.StatusCode)
	}
}
