package phihpl

import (
	"context"
	"io"

	"phihpl/internal/hpl"
	"phihpl/internal/hplio"
	"phihpl/internal/perfmodel"
)

// RunDat parses an HPL.dat-style parameter file, runs every combination of
// its parameter lists, and writes an HPL.out-style report to w.
//
// Combinations with N <= realBelow execute the *real* 2D block-cyclic
// distributed solver on P×Q in-process ranks, measuring the actual HPL
// residual; larger combinations are priced on the simulated Knights Corner
// cluster (1 card per node), for which no residual line is printed — the
// same split a user of this repository would want.
func RunDat(r io.Reader, w io.Writer, realBelow int) error {
	return RunDatCtx(context.Background(), r, w, realBelow)
}

// RunDatCtx is RunDat under a context. On cancellation the sweep stops,
// the in-flight and remaining combinations are reported as ABORTED, the
// partial report is still written to w, and ctx.Err() is returned — so a
// timed-out benchmark run always leaves a truthful record of how far it got.
func RunDatCtx(ctx context.Context, r io.Reader, w io.Writer, realBelow int) error {
	return RunDatModeCtx(ctx, r, w, realBelow, LookaheadPipelined)
}

// RunDatModeCtx is RunDatCtx with an explicit look-ahead schedule for the
// real combinations; the mode is echoed in the report header. (The
// virtual-time combinations keep their own per-combination DEPTH column.)
func RunDatModeCtx(ctx context.Context, r io.Reader, w io.Writer, realBelow int, mode LookaheadMode) error {
	params, err := hplio.Parse(r)
	if err != nil {
		return err
	}
	var results []hplio.Result
	for _, c := range params.Combinations() {
		res := hplio.Result{Combination: c, Residual: -1}
		if c.N < 1 || c.NB < 1 || c.P < 1 || c.Q < 1 {
			// Illegal input values: counted in the report footer instead
			// of crashing the sweep, like the reference HPL.
			res.Skipped = true
			results = append(results, res)
			continue
		}
		if ctx.Err() != nil {
			res.Aborted = true
			results = append(results, res)
			continue
		}
		if c.N <= realBelow {
			dr, err := hpl.SolveDistributed2DModeCtx(ctx, c.N, c.NB, c.P, c.Q, 0x5eed, mode, nil)
			if err != nil {
				if ctx.Err() != nil {
					res.Aborted = true
					results = append(results, res)
					continue
				}
				return err
			}
			// Virtual-time estimate is meaningless for the host run; use
			// the model's node projection for the Gflops column anyway so
			// the report stays comparable, but keep the real residual.
			res.Residual = dr.Residual
			res.Passed = dr.Residual < ResidualThreshold
		}
		sim := hpl.Simulate(hpl.SimConfig{
			N: c.N, NB: simNB(c.NB), P: c.P, Q: c.Q, Cards: 1,
			Lookahead: depthToMode(c.Depth),
		})
		res.Seconds = sim.Seconds
		res.GFLOPS = sim.TFLOPS * 1000
		results = append(results, res)
	}
	hplio.SortResults(results)
	hplio.WriteReportHeader(w, "look-ahead (real combinations): "+mode.String(), results)
	return ctx.Err()
}

// simNB keeps the virtual-time model in its calibrated blocking regime:
// the offload depth must stay above the PCIe bound, so tiny NBs from a
// real-solve-oriented dat file are promoted to the paper's Kt.
func simNB(nb int) int {
	if nb < 600 {
		return 1200
	}
	return nb
}

// depthToMode maps HPL.dat look-ahead depths onto the paper's schemes.
func depthToMode(d int) hpl.Mode {
	switch d {
	case 0:
		return hpl.NoLookahead
	case 2:
		return hpl.PipelinedLookahead
	default:
		return hpl.BasicLookahead
	}
}

// LUFlops re-exports the standard Linpack flop count 2/3·n³ + 2·n².
func LUFlops(n int) float64 { return perfmodel.LUFlops(n) }
