package phihpl

import (
	"fmt"
	"strings"

	"phihpl/internal/hpl"
	"phihpl/internal/machine"
	"phihpl/internal/offload"
	"phihpl/internal/perfmodel"
	"phihpl/internal/simhybrid"
	"phihpl/internal/simlu"
	"phihpl/internal/trace"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	// Run produces the experiment's rows/series as printable text.
	Run func() string
}

// Experiments returns all experiment runners in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table I: system configurations", Table1},
		{"table2", "Table II: SGEMM/DGEMM efficiency vs k (M=N=28000)", Table2},
		{"fig4", "Figure 4: native DGEMM vs matrix size", Fig4},
		{"fig6", "Figure 6: native Linpack vs problem size", Fig6},
		{"fig7", "Figure 7: LU execution Gantt charts (5K)", Fig7},
		{"fig8", "Figure 8: hybrid look-ahead scheme timelines", Fig8},
		{"fig9", "Figure 9: hybrid HPL iteration profile (2x2)", Fig9},
		{"fig11", "Figure 11: offload DGEMM vs matrix size", Fig11},
		{"table3", "Table III: node- and cluster-level HPL", Table3},
		{"energy", "Section VII: energy efficiency (GFLOPS/W)", Energy},
		{"ablations", "Design-choice ablations (DESIGN.md)", Ablations},
	}
}

// FindExperiment returns the runner with the given id, or nil.
func FindExperiment(id string) *Experiment {
	for _, e := range Experiments() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// Table1 prints the hardware configurations (Table I).
func Table1() string {
	var b strings.Builder
	knc := machine.KnightsCorner()
	snb := machine.SandyBridgeEP()
	fmt.Fprintf(&b, "%-28s %18s %18s\n", "", snb.Name, knc.Name)
	row := func(label, sv, kv string) { fmt.Fprintf(&b, "%-28s %18s %18s\n", label, sv, kv) }
	row("Sockets x Cores x SMT",
		fmt.Sprintf("%dx%dx%d", snb.Sockets, snb.CoresPerSocket, snb.ThreadsPerCore),
		fmt.Sprintf("%dx%dx%d", knc.Sockets, knc.CoresPerSocket, knc.ThreadsPerCore))
	row("Clock (GHz)", fmt.Sprintf("%.1f", snb.ClockGHz), fmt.Sprintf("%.1f", knc.ClockGHz))
	row("SP GFLOPS", fmt.Sprintf("%.0f", snb.PeakSPGFLOPS()), fmt.Sprintf("%.0f", knc.PeakSPGFLOPS()))
	row("DP GFLOPS", fmt.Sprintf("%.0f", snb.PeakDPGFLOPS()), fmt.Sprintf("%.0f", knc.PeakDPGFLOPS()))
	row("L1/L2 per core (KB)",
		fmt.Sprintf("%d/%d", snb.L1Bytes/1024, snb.L2Bytes/1024),
		fmt.Sprintf("%d/%d", knc.L1Bytes/1024, knc.L2Bytes/1024))
	row("STREAM BW (GB/s)", fmt.Sprintf("%.0f", snb.StreamBW/1e9), fmt.Sprintf("%.0f", knc.StreamBW/1e9))
	pcie := machine.DefaultPCIe()
	row("PCIe BW (GB/s)", "-", fmt.Sprintf("%.0f", pcie.RawBW/1e9))
	return b.String()
}

// Table2 regenerates Table II: SGEMM and DGEMM performance and efficiency
// as a function of k for M = N = 28000.
func Table2() string {
	m := perfmodel.NewKNC()
	var b strings.Builder
	fmt.Fprintf(&b, "%6s | %12s %12s | %12s %12s\n", "k",
		"SGEMM eff%", "SGEMM GF", "DGEMM eff%", "DGEMM GF")
	for _, k := range []int{120, 180, 240, 300, 340, 400} {
		fmt.Fprintf(&b, "%6d | %12.1f %12.0f | %12.1f %12.0f\n", k,
			m.SgemmEff(28000, 28000, k)*100, m.SgemmGFLOPS(28000, 28000, k),
			m.DgemmEff(28000, 28000, k)*100, m.DgemmGFLOPS(28000, 28000, k))
	}
	return b.String()
}

// Fig4 regenerates Figure 4: DGEMM performance vs. matrix size on Sandy
// Bridge (MKL) and Knights Corner (outer-product kernel with and without
// packing overhead, k=300).
func Fig4() string {
	knc := perfmodel.NewKNC()
	snb := perfmodel.NewSNB()
	var b strings.Builder
	fmt.Fprintf(&b, "%7s | %10s | %12s | %14s | %9s\n",
		"N", "SNB GF", "KNC kern GF", "KNC packed GF", "pack ov%")
	for n := 1000; n <= 28000; n += 1000 {
		kern := knc.DgemmKernelEff(n, n, 300) * knc.Arch.ComputePeakDPGFLOPS()
		packed := knc.DgemmEff(n, n, 300) * knc.Arch.ComputePeakDPGFLOPS()
		host := snb.DgemmEff(n) * snb.Arch.PeakDPGFLOPS()
		fmt.Fprintf(&b, "%7d | %10.1f | %12.1f | %14.1f | %9.2f\n",
			n, host, kern, packed, perfmodel.PackOverhead(n)*100)
	}
	return b.String()
}

// Fig6 regenerates Figure 6: native Linpack performance vs. problem size —
// static look-ahead vs. dynamic scheduling on the simulated Knights
// Corner, with the MKL host Linpack and the DGEMM roofline for context.
func Fig6() string {
	knc := perfmodel.NewKNC()
	snb := perfmodel.NewSNB()
	var b strings.Builder
	fmt.Fprintf(&b, "%7s | %10s | %12s | %12s | %12s\n",
		"N", "SNB HPL GF", "KNC static", "KNC dynamic", "KNC DGEMM")
	for _, n := range []int{1000, 2000, 4000, 5000, 8000, 10000, 15000, 20000, 25000, 30000} {
		st := simlu.Static(simlu.Config{N: n})
		dy := simlu.Dynamic(simlu.Config{N: n})
		roof := knc.DgemmGFLOPS(n, n, 300)
		fmt.Fprintf(&b, "%7d | %10.1f | %12.1f | %12.1f | %12.1f\n",
			n, snb.HPLGFLOPS(n), st.GFLOPS, dy.GFLOPS, roof)
	}
	return b.String()
}

// Fig7 regenerates Figure 7: ASCII Gantt charts of the LU execution
// profile for the 5K problem, static look-ahead vs. dynamic scheduling.
func Fig7() string {
	var b strings.Builder
	var sta trace.Recorder
	s := simlu.Static(simlu.Config{N: 5120, NB: 256, Trace: &sta})
	fmt.Fprintf(&b, "static look-ahead, N=5120: %.1f GFLOPS (%.1f%%)\n", s.GFLOPS, s.Eff*100)
	b.WriteString(sta.Gantt(100))
	b.WriteString(sta.ProfileTable(0))
	b.WriteString("\n")
	var dyn trace.Recorder
	d := simlu.Dynamic(simlu.Config{N: 5120, NB: 256, Trace: &dyn})
	fmt.Fprintf(&b, "dynamic scheduling, N=5120: %.1f GFLOPS (%.1f%%)\n", d.GFLOPS, d.Eff*100)
	b.WriteString(dyn.Gantt(100))
	b.WriteString(dyn.ProfileTable(0))
	return b.String()
}

// Fig8 regenerates Figure 8: the host/card/broadcast lane timelines of the
// three look-ahead schemes, built by the event-driven pipeline simulator.
func Fig8() string {
	return simhybrid.Figure8(84000, 1)
}

// Fig9 regenerates Figure 9: the per-iteration execution profile of
// multi-node (2x2) hybrid HPL with and without the swapping pipeline, and
// the per-iteration saving (Figure 9c).
func Fig9() string {
	var b strings.Builder
	var basic, pipe trace.Recorder
	rb := hpl.Simulate(hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 2,
		Lookahead: hpl.BasicLookahead, Trace: &basic})
	rp := hpl.Simulate(hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 2,
		Lookahead: hpl.PipelinedLookahead, Trace: &pipe})
	fmt.Fprintf(&b, "basic look-ahead:     %.2f TFLOPS (%.1f%%), card idle %.1f%%\n",
		rb.TFLOPS, rb.Eff*100, rb.CardIdleFrac*100)
	fmt.Fprintf(&b, "pipelined look-ahead: %.2f TFLOPS (%.1f%%), card idle %.1f%%\n\n",
		rp.TFLOPS, rp.Eff*100, rp.CardIdleFrac*100)

	bi, pi := basic.IterTotals(), pipe.IterTotals()
	fmt.Fprintf(&b, "%6s | %10s %10s %10s | %10s %10s | %8s\n",
		"iter", "dgemm(s)", "exposed-b", "exposed-p", "iter-b(s)", "iter-p(s)", "saved%")
	step := len(bi) / 12
	if step < 1 {
		step = 1
	}
	sum := func(m map[string]float64) float64 {
		s := 0.0
		for _, v := range m {
			s += v
		}
		return s
	}
	for i := 0; i < len(bi) && i < len(pi); i += step {
		dg := bi[i]["DGEMM"]
		eb := sum(bi[i]) - dg
		ep := sum(pi[i]) - pi[i]["DGEMM"]
		tb := dg + eb
		tp := pi[i]["DGEMM"] + ep
		saved := 0.0
		if tb > 0 {
			saved = (tb - tp) / tb * 100
		}
		fmt.Fprintf(&b, "%6d | %10.3f %10.3f %10.3f | %10.3f %10.3f | %8.1f\n",
			i, dg, eb, ep, tb, tp, saved)
	}
	return b.String()
}

// Fig11 regenerates Figure 11: offload DGEMM performance vs. matrix size
// for one and two coprocessors (trailing-update shapes, Kt = 1200).
func Fig11() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s | %10s %7s %6s | %10s %7s %6s\n",
		"M=N", "1card GF", "eff%", "tile", "2card GF", "eff%", "tile")
	for _, m := range []int{10000, 20000, 30000, 40000, 50000, 60000, 70000, 82000} {
		r1 := offload.Simulate(m, m, offload.SimConfig{Cards: 1})
		r2 := offload.Simulate(m, m, offload.SimConfig{Cards: 2})
		fmt.Fprintf(&b, "%7d | %10.1f %7.1f %6d | %10.1f %7.1f %6d\n",
			m, r1.GFLOPS, r1.Eff*100, r1.Mt, r2.GFLOPS, r2.Eff*100, r2.Mt)
	}
	return b.String()
}

// Table3 regenerates Table III: achieved performance at node and cluster
// level for the paper's Knights Corner and host-memory configurations.
func Table3() string {
	rows := []struct {
		label string
		cfg   hpl.SimConfig
	}{
		{"Sandy Bridge EP, 64GB", hpl.SimConfig{N: 84000, P: 1, Q: 1, Cards: 0}},
		{"Sandy Bridge EP, 64GB", hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 0}},
		{"no pipeline, 1 card, 64GB", hpl.SimConfig{N: 84000, P: 1, Q: 1, Cards: 1, Lookahead: hpl.BasicLookahead}},
		{"pipeline, 1 card, 64GB", hpl.SimConfig{N: 84000, P: 1, Q: 1, Cards: 1, Lookahead: hpl.PipelinedLookahead}},
		{"no pipeline, 1 card, 64GB", hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: hpl.BasicLookahead}},
		{"pipeline, 1 card, 64GB", hpl.SimConfig{N: 168000, P: 2, Q: 2, Cards: 1, Lookahead: hpl.PipelinedLookahead}},
		{"no pipeline, 1 card, 64GB", hpl.SimConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: hpl.BasicLookahead}},
		{"pipeline, 1 card, 64GB", hpl.SimConfig{N: 825600, P: 10, Q: 10, Cards: 1, Lookahead: hpl.PipelinedLookahead}},
		{"no pipeline, 2 cards, 64GB", hpl.SimConfig{N: 84000, P: 1, Q: 1, Cards: 2, Lookahead: hpl.BasicLookahead}},
		{"pipeline, 2 cards, 64GB", hpl.SimConfig{N: 84000, P: 1, Q: 1, Cards: 2, Lookahead: hpl.PipelinedLookahead}},
		{"no pipeline, 2 cards, 64GB", hpl.SimConfig{N: 166800, P: 2, Q: 2, Cards: 2, Lookahead: hpl.BasicLookahead}},
		{"pipeline, 2 cards, 64GB", hpl.SimConfig{N: 166800, P: 2, Q: 2, Cards: 2, Lookahead: hpl.PipelinedLookahead}},
		{"no pipeline, 2 cards, 64GB", hpl.SimConfig{N: 822000, P: 10, Q: 10, Cards: 2, Lookahead: hpl.BasicLookahead}},
		{"pipeline, 2 cards, 64GB", hpl.SimConfig{N: 822000, P: 10, Q: 10, Cards: 2, Lookahead: hpl.PipelinedLookahead}},
		{"pipeline, 1 card, 128GB", hpl.SimConfig{N: 242400, P: 2, Q: 2, Cards: 1, HostMemGiB: 128, Lookahead: hpl.PipelinedLookahead}},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s | %6s | %2s | %2s | %8s | %6s\n", "System", "N", "P", "Q", "TFLOPS", "Eff%")
	for _, r := range rows {
		res := hpl.Simulate(r.cfg)
		fmt.Fprintf(&b, "%-28s | %5dK | %2d | %2d | %8.2f | %6.1f\n",
			r.label, r.cfg.N/1000, r.cfg.P, r.cfg.Q, res.TFLOPS, res.Eff*100)
	}
	return b.String()
}
