// Command hpl runs Linpack: either a real, residual-checked solve (native
// in-process or distributed over goroutine "nodes"), or a virtual-time
// hybrid HPL projection for a Knights Corner cluster, printing an
// HPL.out-style report.
//
// Usage:
//
//	hpl -real -n 2000 -nb 64 -ranks 4          # real distributed solve (1D)
//	hpl -real -n 768 -nb 32 -p 4 -q 4 -lookahead pipelined -trace out.json -gantt
//	                                           # real 2D solve, pipeline Gantt
//	hpl -native -n 1024 -workers 4 -trace out.json -metrics
//	                                           # real DAG solve, Chrome trace + metrics
//	hpl -native -n 1024 -precision mixed       # HPL-MxP: FP32 factor + FP64 refinement
//	hpl -n 960 -nb 64 -p 2 -q 2 -faults 'seed=7;drop=0.02;crash=3@2'
//	                                           # fault-tolerant solve under injection
//	hpl -n 84000 -cards 1 -mode pipelined      # hybrid projection
//	hpl -n 825600 -p 10 -q 10 -cards 1 -mode pipelined
//
// Observability: -trace FILE writes Chrome trace-event JSON (open in
// chrome://tracing or ui.perfetto.dev) of whatever real work ran — the
// dynamic DAG scheduler's per-worker PanelFact/Update spans for -native,
// per-rank super-step spans for fault-tolerant runs, the virtual-time
// region timeline for projections. -metrics prints a registry snapshot
// (packed-DGEMM bytes, pool drops, transport resends/timeouts, FT
// rollbacks) after the run; -gantt additionally renders the ASCII chart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"phihpl"
	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/hpl"
	"phihpl/internal/hplio"
	"phihpl/internal/lu"
	"phihpl/internal/metrics"
	"phihpl/internal/pool"
	"phihpl/internal/trace"
)

// Exit codes, documented in README.md: the process outcome is machine
// readable even when the report is partial.
const (
	exitPass     = 0 // solve completed and passed the residual check
	exitFailed   = 1 // solve completed but failed the residual check (or other error)
	exitAborted  = 2 // cancelled by -timeout, SIGINT or SIGTERM
	exitRankFail = 3 // rank crash, contained worker panic, or unrecoverable fault

	// exitUnsupported shares code 3: the run never started because the
	// flag combination names a path the solver stack does not implement
	// (today: -precision mixed with -faults/-ft, -dat, the 1D -ranks
	// driver, or the hybrid projection). Distinct from exitFailed so
	// harnesses can tell "your request is unsupported" from "your matrix
	// failed".
	exitUnsupported = 3
)

// mixedUnsupportedMsg returns a non-empty diagnostic when -precision
// mixed is combined with a path that would silently run FP64. The HPL-MxP
// ladder covers the -native shared-memory solve and the real 2D
// distributed drivers (-real with a P×Q grid, p·q > 1); the remaining
// paths refuse loudly, each naming its own reason and the nearest
// supported invocation.
func mixedUnsupportedMsg(native, real, ft, dat bool, p, q int, precision phihpl.PrecisionMode) string {
	if precision != phihpl.PrecisionMixed || native {
		return ""
	}
	switch {
	case ft:
		return "-precision mixed cannot be combined with -faults/-ft: the fault-tolerant solver's ABFT " +
			"checksum columns and checkpoints protect FP64 state only, and a mixed FP64 fallback re-run " +
			"would be indistinguishable from a rollback — run the FT solver in FP64, or drop -faults/-ft " +
			"to use the mixed 2D driver"
	case dat:
		return "-precision mixed is not supported with -dat: HPL.dat sweeps run the FP64 drivers — " +
			"use -real -p P -q Q -precision mixed for a mixed 2D solve"
	case real && p*q > 1:
		return "" // the real 2D driver carries the full mixed ladder
	case real:
		return "-precision mixed needs a 2D grid: the 1D -ranks driver factors in FP64 only — " +
			"add -p/-q with p·q > 1, or use -native"
	default:
		return "-precision mixed has no meaning for the hybrid projection (virtual time prices FP64 " +
			"GEMMs); use -native or -real -p P -q Q"
	}
}

// printRefine reports the mixed-precision phase of a finished solve.
func printRefine(rr *phihpl.RefineReport) {
	if rr == nil {
		return
	}
	if rr.FellBack {
		fmt.Printf("precision=mixed refine-iters=%d fallback=%s (solved in FP64)\n",
			rr.Iterations, rr.Reason)
	} else {
		fmt.Printf("precision=mixed refine-iters=%d fallback=none\n", rr.Iterations)
	}
}

// exitCode classifies a solve error into the documented exit codes.
func exitCode(err error) int {
	var pe *phihpl.PanicError
	var rpe *cluster.RankPanicError
	var fe *phihpl.FaultError
	switch {
	case err == nil:
		return exitPass
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return exitAborted
	case errors.As(err, &pe), errors.As(err, &rpe), errors.As(err, &fe),
		errors.Is(err, cluster.ErrRankFailed):
		return exitRankFail
	default:
		return exitFailed
	}
}

// writeAbortedReport emits the partial HPL.out-style record of a cancelled
// run: the combination that was in flight, marked ABORTED.
func writeAbortedReport(n, nb, p, q int, elapsed float64) {
	hplio.WriteReport(os.Stdout, []hplio.Result{{
		Combination: hplio.Combination{N: n, NB: nb, P: p, Q: q, Depth: 1},
		Seconds:     elapsed,
		Residual:    -1,
		Aborted:     true,
	}})
}

func main() {
	var (
		dat     = flag.String("dat", "", "run every combination in an HPL.dat-style file (use '-' for a built-in example)")
		real    = flag.Bool("real", false, "run a real, residual-checked solve instead of a projection")
		native  = flag.Bool("native", false, "run a real single-process solve with the dynamic DAG scheduler")
		n       = flag.Int("n", 84000, "problem size")
		nb      = flag.Int("nb", 0, "block size (0 = default: 64 real, 1200 hybrid)")
		p       = flag.Int("p", 1, "process rows")
		q       = flag.Int("q", 1, "process columns")
		ranks   = flag.Int("ranks", 4, "ranks for -real distributed solve")
		workers = flag.Int("workers", 4, "thread groups for -native")
		cards   = flag.Int("cards", 1, "coprocessor cards per node (0 = CPU only)")
		mem     = flag.Int("mem", 64, "host memory per node (GiB)")
		mode    = flag.String("mode", "pipelined", "look-ahead for the hybrid projection: none | basic | pipelined")
		lookStr = flag.String("lookahead", "pipelined", "stage schedule for real 2D solves (-real with -p/-q, -dat, -ft): none | basic | pipelined")
		seed    = flag.Uint64("seed", 1, "matrix seed for -real/-native")
		precStr = flag.String("precision", "fp64", "arithmetic for -native: fp64 | mixed (FP32 factorization + FP64 iterative refinement, same residual verdict)")

		traceOut = flag.String("trace", "", "write Chrome trace-event JSON of the run to this file")
		metricsF = flag.Bool("metrics", false, "print a metrics snapshot after the run")
		gantt    = flag.Bool("gantt", false, "with -trace: also render the ASCII Gantt chart")

		faults   = flag.String("faults", "", "fault-injection plan for a fault-tolerant real solve on the P×Q grid, e.g. 'seed=7;drop=0.02;crash=3@2;scrub=1@4' ('' with -ft runs the FT solver fault-free)")
		ft       = flag.Bool("ft", false, "run the fault-tolerant solver even with no -faults plan")
		ftTime   = flag.Duration("ft-timeout", 0, "per-operation timeout before a rank is declared failed (0 = default)")
		ckEvery  = flag.Int("ckpt-every", 0, "checkpoint + ABFT verification period in panel stages (0 = default)")
		restarts = flag.Int("max-restarts", 0, "rollback attempts before giving up (0 = default)")

		timeout = flag.Duration("timeout", 0, "wall-clock budget for the whole run; on expiry (or SIGINT/SIGTERM) the solve is cancelled, a partial report marked ABORTED is written, and the exit code is 2 (0 = no limit)")
	)
	flag.Parse()

	// One context governs the run: -timeout arms a deadline, SIGINT/SIGTERM
	// cancel it, and every real solver observes it at its scheduling
	// boundaries — cancellation unwinds workers and ranks cleanly instead
	// of killing the process mid-write.
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if *timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, *timeout)
	}
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	lookahead, err := phihpl.ParseLookaheadMode(*lookStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(exitFailed)
	}
	precision, err := phihpl.ParsePrecisionMode(*precStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(exitFailed)
	}
	// Refuse, loudly and with a distinct exit code, rather than silently
	// falling back to FP64 on paths the mixed ladder does not cover yet.
	if msg := mixedUnsupportedMsg(*native, *real, *faults != "" || *ft, *dat != "", *p, *q, precision); msg != "" {
		fmt.Fprintln(os.Stderr, "error:", msg)
		os.Exit(exitUnsupported)
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = new(trace.Recorder)
	}
	var reg *metrics.Registry
	if *metricsF {
		reg = metrics.NewRegistry()
	}
	if reg != nil {
		// Metrics flow from every layer; spans stay with the solver that
		// owns the timeline so the trace has one coherent worker axis.
		pool.SetObservability(nil, reg)
		blas.SetObservability(nil, reg)
		cluster.SetMetrics(reg)
		hpl.SetMetrics(reg)
		lu.SetMetrics(reg)
	}

	if *native {
		bs := *nb
		if bs == 0 {
			bs = 64
		}
		start := time.Now()
		var res phihpl.SolveResult
		var err error
		if precision == phihpl.PrecisionMixed {
			res, err = phihpl.SolveMixedPrecisionCtx(ctx, *n, precision, bs, *workers, *seed, rec)
		} else {
			res, err = phihpl.SolveTracedContext(ctx, *n, phihpl.DynamicDAG, bs, *workers, *seed, rec)
		}
		elapsed := time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			if code := exitCode(err); code == exitAborted {
				writeAbortedReport(*n, bs, 1, 1, elapsed)
				finishObservability(rec, *traceOut, *gantt, reg)
				os.Exit(code)
			} else {
				os.Exit(code)
			}
		}
		if reg != nil {
			reg.Gauge("hpl.gflops").Set(phihpl.LUFlops(*n) / elapsed / 1e9)
			reg.Gauge("hpl.seconds").Set(elapsed)
		}
		status := "PASSED"
		if !res.Passed {
			status = "FAILED"
		}
		sched := "dynamic"
		if precision == phihpl.PrecisionMixed {
			sched = "mixed"
		}
		fmt.Printf("N=%d NB=%d workers=%d sched=%s %.3fs %.2f GFLOPS\n",
			*n, bs, *workers, sched, elapsed, phihpl.LUFlops(*n)/elapsed/1e9)
		printRefine(res.Refine)
		fmt.Printf("||Ax-b||_oo/(eps*(||A||_oo*||x||_oo+||b||_oo)*N) = %10.7f ...... %s\n",
			res.Residual, status)
		finishObservability(rec, *traceOut, *gantt, reg)
		if !res.Passed {
			os.Exit(exitFailed)
		}
		return
	}

	if *faults != "" || *ft {
		runFaultTolerant(ctx, *n, *nb, *p, *q, *seed, *faults, *ftTime, *ckEvery, *restarts, lookahead, rec)
		finishObservability(rec, *traceOut, *gantt, reg)
		return
	}

	if *dat != "" {
		var r io.Reader
		if *dat == "-" {
			r = strings.NewReader(hplio.Example())
		} else {
			f, err := os.Open(*dat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		// Combinations up to N=2000 run the real distributed solver. On
		// cancellation RunDatCtx has already written the partial report
		// with the unfinished combinations marked ABORTED.
		if err := phihpl.RunDatModeCtx(ctx, r, os.Stdout, 2000, lookahead); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			finishObservability(rec, *traceOut, *gantt, reg)
			os.Exit(exitCode(err))
		}
		finishObservability(rec, *traceOut, *gantt, reg)
		return
	}

	if *real {
		bs := *nb
		if bs == 0 {
			bs = 64
		}
		start := time.Now()
		var res phihpl.SolveResult
		var err error
		if *p**q > 1 {
			// A real P×Q grid: the full 2D driver under the selected
			// look-ahead schedule and precision, with per-stage pipeline
			// spans on rec.
			res, err = phihpl.SolveDistributed2DPrecisionCtx(ctx, *n, bs, *p, *q, *seed, lookahead, precision, rec)
		} else {
			res, err = phihpl.SolveDistributedCtx(ctx, *n, bs, *ranks, *seed)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			if code := exitCode(err); code == exitAborted {
				writeAbortedReport(*n, bs, *p, maxInt(*q, *ranks), time.Since(start).Seconds())
				finishObservability(rec, *traceOut, *gantt, reg)
				os.Exit(code)
			} else {
				os.Exit(code)
			}
		}
		elapsed := time.Since(start).Seconds()
		status := "PASSED"
		if !res.Passed {
			status = "FAILED"
		}
		if *p**q > 1 {
			fmt.Printf("N=%d NB=%d grid=%dx%d lookahead=%s %.3fs %.2f GFLOPS\n",
				*n, bs, *p, *q, lookahead, elapsed, phihpl.LUFlops(*n)/elapsed/1e9)
		} else {
			fmt.Printf("N=%d ranks=%d\n", *n, *ranks)
		}
		printRefine(res.Refine)
		fmt.Printf("||Ax-b||_oo/(eps*(||A||_oo*||x||_oo+||b||_oo)*N) = %10.7f ...... %s\n",
			res.Residual, status)
		finishObservability(rec, *traceOut, *gantt, reg)
		if !res.Passed {
			os.Exit(exitFailed)
		}
		return
	}

	var la phihpl.HybridConfig
	la.N, la.NB, la.P, la.Q = *n, *nb, *p, *q
	la.Cards, la.HostMemGiB = *cards, *mem
	la.Trace = rec
	switch *mode {
	case "none":
		la.Lookahead = phihpl.NoLookahead
	case "basic":
		la.Lookahead = phihpl.BasicLookahead
	case "pipelined":
		la.Lookahead = phihpl.PipelinedLookahead
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(exitFailed) // 2 is reserved for aborted runs
	}
	r := phihpl.HybridHPLSim(la)
	fmt.Printf("T/V                N    NB     P     Q               Time                 Gflops\n")
	fmt.Printf("--------------------------------------------------------------------------------\n")
	fmt.Printf("WR%-9s %8d %5d %5d %5d %18.2f %22.3e\n",
		*mode, la.N, maxInt(la.NB, 1200), la.P, la.Q, r.Seconds, r.TFLOPS*1000)
	fmt.Printf("efficiency: %.1f%% of node peak, coprocessor idle: %.1f%%\n",
		r.Eff*100, r.CardIdleFrac*100)
	finishObservability(rec, *traceOut, *gantt, reg)
}

// finishObservability writes the Chrome trace file (and optional ASCII
// Gantt) and prints the metrics snapshot, after whatever run happened.
func finishObservability(rec *trace.Recorder, tracePath string, gantt bool, reg *metrics.Registry) {
	if rec != nil && tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d spans -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
			len(rec.Spans()), tracePath)
		if gantt {
			fmt.Print(rec.Gantt(100))
		}
	}
	if reg != nil {
		fmt.Println("metrics:")
		reg.WriteText(os.Stdout)
	}
}

// runFaultTolerant drives the checksum-protected distributed solver under
// an optional injected fault plan and reports the recovery activity. An
// unrecoverable run exits non-zero with the structured fault report
// instead of hanging or printing a bogus residual; a cancelled run writes
// the partial ABORTED report and exits with the aborted code.
func runFaultTolerant(ctx context.Context, n, nb, p, q int, seed uint64, spec string, timeout time.Duration, ckptEvery, maxRestarts int, lookahead phihpl.LookaheadMode, rec *trace.Recorder) {
	if nb == 0 {
		nb = 64
	}
	cfg := phihpl.FTConfig{Timeout: timeout, CheckpointEvery: ckptEvery, MaxRestarts: maxRestarts, Lookahead: lookahead, Trace: rec}
	if spec != "" {
		plan, err := phihpl.ParseFaultPlan(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(exitFailed)
		}
		cfg.Plan = plan
	}
	start := time.Now()
	res, err := phihpl.SolveFaultTolerant2DCtx(ctx, n, nb, p, q, seed, cfg)
	if err != nil {
		code := exitCode(err)
		var fe *phihpl.FaultError
		if errors.As(err, &fe) {
			fmt.Fprintf(os.Stderr, "UNRECOVERABLE after %d restart(s), reached stage %d: %v\n",
				fe.Restarts, fe.Iter, fe.Err)
			for _, st := range fe.Profile {
				fmt.Fprintf(os.Stderr, "  stage %-4d %.6fs\n", st.Stage, st.Seconds)
			}
		} else {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		if code == exitAborted {
			writeAbortedReport(n, nb, p, q, time.Since(start).Seconds())
		}
		os.Exit(code)
	}
	status := "PASSED"
	if !res.Passed {
		status = "FAILED"
	}
	fmt.Printf("N=%d NB=%d grid=%dx%d faults=%q\n", n, nb, p, q, spec)
	fmt.Printf("||Ax-b||_oo/(eps*(||A||_oo*||x||_oo+||b||_oo)*N) = %10.7f ...... %s\n",
		res.Residual, status)
	if ftst := res.FT; ftst != nil {
		fmt.Printf("recovery: restarts=%d checkpoints=%d reconstructions=%d chk-rebuilds=%d resends=%d checksum-rejects=%d\n",
			ftst.Restarts, ftst.Checkpoints, ftst.Reconstructions, ftst.ChecksumRebuilds,
			ftst.Resends, ftst.ChecksumRejects)
		fmt.Printf("injected:  drops=%d dups=%d delays=%d corrupts=%d crashes=%d stalls=%d scrubs=%d\n",
			ftst.Faults.Drops, ftst.Faults.Dups, ftst.Faults.Delays, ftst.Faults.Corrupts,
			ftst.Faults.Crashes, ftst.Faults.Stalls, ftst.Faults.Scrubs)
	}
	if !res.Passed {
		os.Exit(exitFailed)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
