// Command hpl runs Linpack: either a real, residual-checked solve (native
// in-process or distributed over goroutine "nodes"), or a virtual-time
// hybrid HPL projection for a Knights Corner cluster, printing an
// HPL.out-style report.
//
// Usage:
//
//	hpl -real -n 2000 -nb 64 -ranks 4          # real distributed solve
//	hpl -n 84000 -cards 1 -mode pipelined      # hybrid projection
//	hpl -n 825600 -p 10 -q 10 -cards 1 -mode pipelined
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"phihpl"
	"phihpl/internal/hplio"
)

func main() {
	var (
		dat   = flag.String("dat", "", "run every combination in an HPL.dat-style file (use '-' for a built-in example)")
		real  = flag.Bool("real", false, "run a real, residual-checked solve instead of a projection")
		n     = flag.Int("n", 84000, "problem size")
		nb    = flag.Int("nb", 0, "block size (0 = default: 64 real, 1200 hybrid)")
		p     = flag.Int("p", 1, "process rows")
		q     = flag.Int("q", 1, "process columns")
		ranks = flag.Int("ranks", 4, "ranks for -real distributed solve")
		cards = flag.Int("cards", 1, "coprocessor cards per node (0 = CPU only)")
		mem   = flag.Int("mem", 64, "host memory per node (GiB)")
		mode  = flag.String("mode", "pipelined", "look-ahead: none | basic | pipelined")
		seed  = flag.Uint64("seed", 1, "matrix seed for -real")
	)
	flag.Parse()

	if *dat != "" {
		var r io.Reader
		if *dat == "-" {
			r = strings.NewReader(hplio.Example())
		} else {
			f, err := os.Open(*dat)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		// Combinations up to N=2000 run the real distributed solver.
		if err := phihpl.RunDat(r, os.Stdout, 2000); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	if *real {
		res, err := phihpl.SolveDistributed(*n, *nb, *ranks, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		status := "PASSED"
		if !res.Passed {
			status = "FAILED"
		}
		fmt.Printf("N=%d ranks=%d\n", *n, *ranks)
		fmt.Printf("||Ax-b||_oo/(eps*(||A||_oo*||x||_oo+||b||_oo)*N) = %10.7f ...... %s\n",
			res.Residual, status)
		if !res.Passed {
			os.Exit(1)
		}
		return
	}

	var la phihpl.HybridConfig
	la.N, la.NB, la.P, la.Q = *n, *nb, *p, *q
	la.Cards, la.HostMemGiB = *cards, *mem
	switch *mode {
	case "none":
		la.Lookahead = phihpl.NoLookahead
	case "basic":
		la.Lookahead = phihpl.BasicLookahead
	case "pipelined":
		la.Lookahead = phihpl.PipelinedLookahead
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	r := phihpl.HybridHPLSim(la)
	fmt.Printf("T/V                N    NB     P     Q               Time                 Gflops\n")
	fmt.Printf("--------------------------------------------------------------------------------\n")
	fmt.Printf("WR%-9s %8d %5d %5d %5d %18.2f %22.3e\n",
		*mode, la.N, maxInt(la.NB, 1200), la.P, la.Q, r.Seconds, r.TFLOPS*1000)
	fmt.Printf("efficiency: %.1f%% of node peak, coprocessor idle: %.1f%%\n",
		r.Eff*100, r.CardIdleFrac*100)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
