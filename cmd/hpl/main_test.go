package main

import (
	"strings"
	"testing"

	"phihpl"
)

// TestMixedUnsupportedGuard locks the -precision mixed flag contract:
// every non-native path refuses with a diagnostic (exit code 3 in main)
// instead of silently running FP64, and the native path stays silent.
func TestMixedUnsupportedGuard(t *testing.T) {
	if msg := mixedUnsupportedMsg(true, phihpl.PrecisionMixed); msg != "" {
		t.Errorf("-native -precision mixed must be accepted, got %q", msg)
	}
	if msg := mixedUnsupportedMsg(false, phihpl.PrecisionFP64); msg != "" {
		t.Errorf("fp64 on any path must be accepted, got %q", msg)
	}
	msg := mixedUnsupportedMsg(false, phihpl.PrecisionMixed)
	if msg == "" {
		t.Fatal("-precision mixed without -native must be refused")
	}
	for _, want := range []string{"-native", "FP64", "mixed"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic %q should mention %q", msg, want)
		}
	}
	if exitUnsupported != 3 {
		t.Errorf("exitUnsupported = %d, want the documented code 3", exitUnsupported)
	}
}
