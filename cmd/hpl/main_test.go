package main

import (
	"strings"
	"testing"

	"phihpl"
)

// TestMixedSupportedPaths locks the lifted -precision mixed contract: the
// native shared-memory solve and the real 2D distributed drivers accept
// mixed, and fp64 is accepted everywhere.
func TestMixedSupportedPaths(t *testing.T) {
	type args struct {
		native, real, ft, dat bool
		p, q                  int
	}
	for _, tc := range []args{
		{native: true},           // -native -precision mixed
		{real: true, p: 2, q: 2}, // -real 2D grid
		{real: true, p: 1, q: 4}, // any p·q > 1 shape
		{real: true, p: 4, q: 1}, //
		{native: true, ft: true}, // -native wins before the FT path is reached
		{real: true, ft: false, p: 3, q: 2},
	} {
		if msg := mixedUnsupportedMsg(tc.native, tc.real, tc.ft, tc.dat, tc.p, tc.q, phihpl.PrecisionMixed); msg != "" {
			t.Errorf("%+v with -precision mixed must be accepted, got %q", tc, msg)
		}
	}
	for _, tc := range []args{
		{}, {real: true, p: 1, q: 1}, {ft: true, p: 2, q: 2}, {dat: true},
	} {
		if msg := mixedUnsupportedMsg(tc.native, tc.real, tc.ft, tc.dat, tc.p, tc.q, phihpl.PrecisionFP64); msg != "" {
			t.Errorf("%+v with fp64 must be accepted, got %q", tc, msg)
		}
	}
}

// TestMixedUnsupportedGuard: the paths still outside the mixed ladder
// refuse with a diagnostic (exit code 3 in main) that names both the
// reason and the nearest supported invocation, instead of silently
// running FP64.
func TestMixedUnsupportedGuard(t *testing.T) {
	for _, tc := range []struct {
		name          string
		real, ft, dat bool
		p, q          int
		wants         []string
	}{
		{name: "ft", real: true, ft: true, p: 2, q: 2, wants: []string{"-faults/-ft", "ABFT", "FP64"}},
		{name: "dat", dat: true, wants: []string{"-dat", "-real -p P -q Q"}},
		{name: "real-1d", real: true, p: 1, q: 1, wants: []string{"1D", "-ranks", "-native"}},
		{name: "projection", wants: []string{"projection", "-native", "-real"}},
	} {
		msg := mixedUnsupportedMsg(false, tc.real, tc.ft, tc.dat, tc.p, tc.q, phihpl.PrecisionMixed)
		if msg == "" {
			t.Fatalf("%s: -precision mixed must be refused", tc.name)
		}
		for _, want := range tc.wants {
			if !strings.Contains(msg, want) {
				t.Errorf("%s: diagnostic %q should mention %q", tc.name, msg, want)
			}
		}
	}
	if exitUnsupported != 3 {
		t.Errorf("exitUnsupported = %d, want the documented code 3", exitUnsupported)
	}
}
