// Command benchjson runs the repository's headline benchmarks — the
// packed-tile DGEMM fast path against the row-split reference, the
// dynamic DAG LU driver, and the real 2D distributed HPL under each
// look-ahead schedule — and writes a machine-readable BENCH_<date>.json
// (GFLOPS, ns/op, bytes/op, allocs/op per case). It seeds the repo's
// performance trajectory: CI runs it at smoke sizes and archives the JSON
// artifact, so regressions show up as a diffable number, not a feeling.
//
// The 2D HPL rows time the HPL phase only (factorization through
// back-substitution) and report each mode's best of -hpliters runs.
//
// Usage:
//
//	benchjson                        # default sizes, BENCH_<yyyymmdd>.json
//	benchjson -sizes 96,128 -lun 128 -hpln 192 -hplgrid 2x2 -o BENCH_ci.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"phihpl"
	"phihpl/internal/blas"
	"phihpl/internal/lu"
	"phihpl/internal/matrix"
	"phihpl/internal/pack"
	"phihpl/internal/perfmodel"
	"phihpl/internal/pool"
)

// caseResult is one benchmark row of the output file.
type caseResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NB          int     `json:"nb,omitempty"`
	P           int     `json:"p,omitempty"`
	Q           int     `json:"q,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	GFLOPS      float64 `json:"gflops"`
	// Verdict is the HPL residual verdict of the solve rows: "PASSED", or
	// "FALLBACK" on a mixed row whose every iteration abandoned the FP32
	// factors for FP64 (the residual still passed — a failing residual
	// aborts the record instead of reporting a number).
	Verdict string `json:"verdict,omitempty"`
	// SpeedupVsFP64 is set on the mixed rows: best fp64 time over best
	// mixed time for the same system (omitted on FALLBACK rows, where it
	// would compare the FP64 path against itself).
	SpeedupVsFP64 float64 `json:"speedup_vs_fp64,omitempty"`
	// RefineIters is the refinement step count of the best mixed solve.
	RefineIters int `json:"refine_iters,omitempty"`
	// FallbackReason is the typed reason of a FALLBACK row
	// ("fp32-singular" | "refinement-stalled" | "non-finite").
	FallbackReason string `json:"fallback_reason,omitempty"`
}

// mixedBest accumulates the iterations of one mixed benchmark case,
// preferring runs that held the FP32 path: a single non-fallback
// iteration makes the row PASSED; only when every iteration fell back is
// the row emitted as FALLBACK with the typed reason — the record reports
// what happened rather than aborting.
type mixedBest struct {
	okSec, fbSec   float64
	okRep, fbRep   phihpl.RefineReport
	okSeen, fbSeen bool
}

func (m *mixedBest) add(sec float64, rep phihpl.RefineReport) {
	if rep.FellBack {
		if !m.fbSeen || sec < m.fbSec {
			m.fbSec, m.fbRep, m.fbSeen = sec, rep, true
		}
		return
	}
	if !m.okSeen || sec < m.okSec {
		m.okSec, m.okRep, m.okSeen = sec, rep, true
	}
}

// row renders the accumulated best as a benchmark row against the
// matching FP64 best time.
func (m *mixedBest) row(name string, n, nb, p, q int, flops, bestFP64 float64) (caseResult, error) {
	c := caseResult{Name: name, N: n, NB: nb, P: p, Q: q}
	switch {
	case m.okSeen:
		c.NsPerOp = m.okSec * 1e9
		c.GFLOPS = flops / c.NsPerOp
		c.Verdict = "PASSED"
		c.SpeedupVsFP64 = bestFP64 / m.okSec
		c.RefineIters = m.okRep.Iterations
	case m.fbSeen:
		c.NsPerOp = m.fbSec * 1e9
		c.GFLOPS = flops / c.NsPerOp
		c.Verdict = "FALLBACK"
		c.RefineIters = m.fbRep.Iterations
		c.FallbackReason = m.fbRep.Reason.String()
	default:
		return caseResult{}, fmt.Errorf("%s: no iterations recorded", name)
	}
	return c, nil
}

// benchFile is the BENCH_<date>.json schema.
type benchFile struct {
	Date       string       `json:"date"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Results    []caseResult `json:"results"`
}

func main() {
	var (
		sizes    = flag.String("sizes", "128,256,512", "comma-separated square DGEMM sizes")
		lun      = flag.Int("lun", 512, "LU problem size for the dynamic-DAG case (0 skips)")
		workers  = flag.Int("workers", 4, "worker count for the parallel paths")
		hpln     = flag.Int("hpln", 768, "2D distributed HPL problem size, run once per look-ahead mode (0 skips)")
		hplnb    = flag.Int("hplnb", 16, "2D distributed HPL block size")
		hplgrid  = flag.String("hplgrid", "2x2,4x4", "2D distributed HPL process grids, comma-separated PxQ")
		hpliters = flag.Int("hpliters", 8, "2D distributed HPL iterations per (grid, mode); best timed phase is reported")
		mxpn     = flag.Int("mxpn", 768, "mixed-precision comparison size: fp64 vs FP32+refinement on one system (0 skips)")
		mxpnb    = flag.Int("mxpnb", 64, "mixed-precision comparison block size")
		mxpiters = flag.Int("mxpiters", 5, "mixed-precision comparison iterations; modes interleave, best of each is reported")
		out      = flag.String("o", "", "output path (default BENCH_<yyyymmdd>.json)")
	)
	flag.Parse()

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("20060102") + ".json"
	}

	file := benchFile{
		Date:       time.Now().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
	}

	for _, f := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", f)
			os.Exit(2)
		}
		file.Results = append(file.Results,
			gemmCase("DgemmParallel", n, *workers, blas.DgemmParallel),
			gemmCase("DgemmPacked", n, *workers, blas.DgemmPacked),
			// The micro-kernel ladder: the same packed driver with the
			// scalar kernel forced, and — where the CPU has AVX2+FMA —
			// with the vector kernel explicitly named, so the scalar→asm
			// rung is a diffable pair of rows rather than an inference
			// about what DgemmPacked dispatched to.
			gemmCaseScalar(n, *workers),
		)
		if pack.VectorKernel() {
			file.Results = append(file.Results,
				gemmCaseAsm(n, *workers),
				// The placement rung: per-socket B-panel replication under
				// a forced two-group pool, against the shared-B DgemmPacked
				// row above. On single-socket CI this prices the
				// replication overhead; on dual-socket metal it shows the
				// interconnect win.
				gemmCaseRepB(n, *workers),
			)
		}
	}

	if *lun > 0 {
		file.Results = append(file.Results, luCase(*lun, *workers))
	}

	if *hpln > 0 {
		for _, gs := range strings.Split(*hplgrid, ",") {
			p, q, err := parseGrid(gs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(2)
			}
			cs, err := hplCases(*hpln, *hplnb, p, q, *hpliters)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			file.Results = append(file.Results, cs...)
		}
	}

	if *mxpn > 0 {
		cs, err := mxpCases(*mxpn, *mxpnb, *workers, *mxpiters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		file.Results = append(file.Results, cs...)
	}

	b, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, r := range file.Results {
		fmt.Printf("%-14s n=%-5d %12.0f ns/op %8.2f GFLOPS %6d B/op %4d allocs/op\n",
			r.Name, r.N, r.NsPerOp, r.GFLOPS, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Println("wrote", path)
}

// gemmDriver is the shared signature of DgemmParallel and DgemmPacked.
type gemmDriver func(transA, transB bool, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense, workers int)

// gemmCase benchmarks one n×n×n DGEMM through the given driver.
func gemmCase(name string, n, workers int, f gemmDriver) caseResult {
	a := matrix.RandomGeneral(n, n, 1)
	x := matrix.RandomGeneral(n, n, 2)
	c := matrix.NewDense(n, n)
	f(false, false, -1, a, x, 1, c, workers) // warm pools and pack buffers
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f(false, false, -1, a, x, 1, c, workers)
		}
	})
	flops := 2 * float64(n) * float64(n) * float64(n)
	return toCase(name, n, flops, r)
}

// gemmCaseScalar benchmarks DgemmPacked with the vector kernel disabled:
// the portable-scalar floor of the micro-kernel ladder, present on every
// platform (on noasm/non-amd64 builds it equals the DgemmPacked row).
func gemmCaseScalar(n, workers int) caseResult {
	pack.DisableVectorKernel = true
	defer func() { pack.DisableVectorKernel = false }()
	return gemmCase("DgemmPacked-scalar", n, workers, blas.DgemmPacked)
}

// gemmCaseAsm benchmarks DgemmPacked with the AVX2+FMA kernel named
// explicitly (numerically the same dispatch as the DgemmPacked row; the
// row exists so the scalar→asm speedup is a first-class pair in the
// archive). Only emitted when the CPU and build carry the kernel.
func gemmCaseAsm(n, workers int) caseResult {
	pack.DisableVectorKernel = false
	return gemmCase("DgemmPacked-asm", n, workers, blas.DgemmPacked)
}

// gemmCaseRepB benchmarks DgemmPacked under a forced two-group pool, so
// the B panel is packed once per group and each worker streams its own
// replica (byte-identical results; see the replication tests).
func gemmCaseRepB(n, workers int) caseResult {
	pool.ForceGroups(2)
	defer pool.ForceGroups(0)
	return gemmCase("DgemmPacked-repB", n, workers, blas.DgemmPacked)
}

// luCase benchmarks the dynamic DAG factorization at order n (NB 64).
func luCase(n, workers int) caseResult {
	a := matrix.RandomGeneral(n, n, 3)
	piv := make([]int, n)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w := a.Clone()
			b.StartTimer()
			if err := lu.Dynamic(w, piv, lu.Options{NB: 64, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
	return toCase("LuDynamic", n, perfmodel.LUFlops(n), r)
}

// parseGrid parses "PxQ" into its two factors.
func parseGrid(s string) (p, q int, err error) {
	parts := strings.SplitN(strings.ToLower(strings.TrimSpace(s)), "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad grid %q (want PxQ)", s)
	}
	p, err1 := strconv.Atoi(parts[0])
	q, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || p < 1 || q < 1 {
		return 0, 0, fmt.Errorf("bad grid %q (want PxQ)", s)
	}
	return p, q, nil
}

// hplCases benchmarks the real 2D distributed solver at order n on a P×Q
// grid, once per (look-ahead schedule, precision) pair — the
// driver-level numbers the schedule and precision work are accountable
// to. It times the HPL phase only (SolveResult.Seconds: factorization
// through back-substitution, behind a barrier; refinement included for
// mixed), interleaves every case across iterations so machine noise hits
// them all alike, and reports each case's best iteration. The residual
// check runs on every iteration; a failing solve aborts the record
// rather than reporting a fast-but-wrong GFLOPS. A mixed solve that fell
// back to FP64 on every iteration is emitted as a FALLBACK row with its
// typed reason instead (see mixedBest).
func hplCases(n, nb, p, q, iters int) ([]caseResult, error) {
	modes := []phihpl.LookaheadMode{
		phihpl.LookaheadNone, phihpl.LookaheadBasic, phihpl.LookaheadPipelined,
	}
	best := make([]float64, len(modes))
	mixed := make([]mixedBest, len(modes))
	run := func(m phihpl.LookaheadMode) (float64, error) {
		res, err := phihpl.SolveDistributed2DMode(n, nb, p, q, 0x5eed, m)
		if err != nil {
			return 0, err
		}
		if !res.Passed {
			return 0, fmt.Errorf("hpl2d %s: residual %g failed", m, res.Residual)
		}
		return res.Seconds, nil
	}
	runMixed := func(mi int, m phihpl.LookaheadMode) error {
		res, err := phihpl.SolveDistributed2DPrecision(n, nb, p, q, 0x5eed, m, phihpl.PrecisionMixed)
		if err != nil {
			return err
		}
		if !res.Passed {
			return fmt.Errorf("hpl2d-mixed %s: residual %g failed", m, res.Residual)
		}
		if res.Refine == nil {
			return fmt.Errorf("hpl2d-mixed %s: no refinement report", m)
		}
		mixed[mi].add(res.Seconds, *res.Refine)
		return nil
	}
	for mi, m := range modes {
		if _, err := run(m); err != nil { // warmup (pools, page faults)
			return nil, err
		}
		if err := runMixed(mi, m); err != nil {
			return nil, err
		}
	}
	mixed = make([]mixedBest, len(modes)) // discard the warmup iteration
	for i := 0; i < iters; i++ {
		for mi, m := range modes {
			s, err := run(m)
			if err != nil {
				return nil, err
			}
			if best[mi] == 0 || s < best[mi] {
				best[mi] = s
			}
			if err := runMixed(mi, m); err != nil {
				return nil, err
			}
		}
	}
	flops := perfmodel.LUFlops(n)
	out := make([]caseResult, 0, 2*len(modes))
	for mi, m := range modes {
		ns := best[mi] * 1e9
		out = append(out, caseResult{
			Name: "Hpl2D-" + m.String(), N: n, NB: nb, P: p, Q: q,
			NsPerOp: ns, GFLOPS: flops / ns, Verdict: "PASSED",
		})
		row, err := mixed[mi].row("Hpl2D-mixed-"+m.String(), n, nb, p, q, flops, best[mi])
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// mxpCases benchmarks the HPL-MxP claim head to head: the classical FP64
// solve against the mixed solve (FP32 packed factorization + FP64
// iterative refinement) on the same random system. Like hplCases, the two
// modes interleave across iterations so machine noise hits both alike,
// and each mode's best iteration is reported. Every solve's residual is
// checked against the HPL bar; a mixed run that fell back to FP64 on
// every iteration is emitted as a FALLBACK row carrying the typed reason
// — the record reports what happened instead of aborting.
func mxpCases(n, nb, workers, iters int) ([]caseResult, error) {
	a, rhs := matrix.RandomSystem(n, 0x5eed)
	opts := lu.Options{NB: nb, Workers: workers}

	runFP64 := func() (float64, error) {
		t0 := time.Now()
		x, res, err := lu.Solve(a, rhs, opts, lu.Sequential)
		sec := time.Since(t0).Seconds()
		if err != nil {
			return 0, err
		}
		if res >= matrix.ResidualThreshold {
			return 0, fmt.Errorf("mxp fp64: residual %g failed", res)
		}
		_ = x
		return sec, nil
	}
	runMixed := func(acc *mixedBest) error {
		t0 := time.Now()
		_, res, rep, err := lu.SolveMixed(a, rhs, opts)
		sec := time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		if res >= matrix.ResidualThreshold {
			return fmt.Errorf("mxp mixed: residual %g failed", res)
		}
		acc.add(sec, rep)
		return nil
	}

	// Warmup both paths (pools, pack buffers, page faults).
	if _, err := runFP64(); err != nil {
		return nil, err
	}
	if err := runMixed(new(mixedBest)); err != nil {
		return nil, err
	}
	var bestFP64 float64
	var mixed mixedBest
	for i := 0; i < iters; i++ {
		s, err := runFP64()
		if err != nil {
			return nil, err
		}
		if bestFP64 == 0 || s < bestFP64 {
			bestFP64 = s
		}
		if err := runMixed(&mixed); err != nil {
			return nil, err
		}
	}
	flops := perfmodel.LUFlops(n)
	nsF := bestFP64 * 1e9
	mixedRow, err := mixed.row("MxP-mixed", n, nb, 0, 0, flops, bestFP64)
	if err != nil {
		return nil, err
	}
	return []caseResult{
		{Name: "MxP-fp64", N: n, NB: nb, NsPerOp: nsF, GFLOPS: flops / nsF,
			Verdict: "PASSED"},
		mixedRow,
	}, nil
}

// toCase converts a testing.BenchmarkResult into the output row.
func toCase(name string, n int, flops float64, r testing.BenchmarkResult) caseResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return caseResult{
		Name:        name,
		N:           n,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		GFLOPS:      flops / ns, // flops per ns == GFLOPS
	}
}
