package main

import (
	"strings"
	"testing"

	"phihpl"
)

// TestMixedBestPrefersFP32Path: one non-fallback iteration makes the row
// PASSED with the speedup against FP64, even when faster fallback
// iterations were also recorded.
func TestMixedBestPrefersFP32Path(t *testing.T) {
	var m mixedBest
	m.add(0.5, phihpl.RefineReport{FellBack: true, Reason: phihpl.FallbackStalled, Iterations: 3})
	m.add(2.0, phihpl.RefineReport{Iterations: 2})
	m.add(1.0, phihpl.RefineReport{Iterations: 2}) // best of the ok runs
	m.add(0.25, phihpl.RefineReport{FellBack: true, Reason: phihpl.FallbackStalled, Iterations: 4})

	row, err := m.row("Hpl2D-mixed-pipelined", 96, 16, 2, 2, 1e9, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if row.Verdict != "PASSED" {
		t.Errorf("verdict = %q, want PASSED", row.Verdict)
	}
	if row.NsPerOp != 1.0*1e9 {
		t.Errorf("NsPerOp = %g, want the best ok iteration (1e9)", row.NsPerOp)
	}
	if row.SpeedupVsFP64 != 1.5 {
		t.Errorf("SpeedupVsFP64 = %g, want 1.5", row.SpeedupVsFP64)
	}
	if row.RefineIters != 2 {
		t.Errorf("RefineIters = %d, want 2", row.RefineIters)
	}
	if row.FallbackReason != "" {
		t.Errorf("FallbackReason = %q, want empty on a PASSED row", row.FallbackReason)
	}
}

// TestMixedBestAllFallbacks: when every iteration abandoned the FP32
// factors, the row is FALLBACK with the typed reason and no speedup —
// comparing the FP64 rerun against the FP64 baseline would be
// meaningless.
func TestMixedBestAllFallbacks(t *testing.T) {
	var m mixedBest
	m.add(3.0, phihpl.RefineReport{FellBack: true, Reason: phihpl.FallbackSingular})
	m.add(2.0, phihpl.RefineReport{FellBack: true, Reason: phihpl.FallbackStalled, Iterations: 5})

	row, err := m.row("MxP-mixed", 96, 16, 0, 0, 1e9, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if row.Verdict != "FALLBACK" {
		t.Errorf("verdict = %q, want FALLBACK", row.Verdict)
	}
	if row.NsPerOp != 2.0*1e9 {
		t.Errorf("NsPerOp = %g, want the best fallback iteration (2e9)", row.NsPerOp)
	}
	if row.FallbackReason != "refinement-stalled" {
		t.Errorf("FallbackReason = %q, want refinement-stalled", row.FallbackReason)
	}
	if row.RefineIters != 5 {
		t.Errorf("RefineIters = %d, want 5", row.RefineIters)
	}
	if row.SpeedupVsFP64 != 0 {
		t.Errorf("SpeedupVsFP64 = %g, want omitted (0) on a FALLBACK row", row.SpeedupVsFP64)
	}
}

// TestMixedBestEmpty: a case with no recorded iterations is a bug in the
// driver loop and must surface as an error, not a zero row.
func TestMixedBestEmpty(t *testing.T) {
	var m mixedBest
	_, err := m.row("Hpl2D-mixed-none", 96, 16, 2, 2, 1e9, 1.0)
	if err == nil || !strings.Contains(err.Error(), "no iterations") {
		t.Fatalf("err = %v, want no-iterations error", err)
	}
}
