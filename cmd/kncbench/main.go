// Command kncbench regenerates the tables and figures of the paper's
// evaluation section on the simulated Knights Corner machine.
//
// Usage:
//
//	kncbench -list
//	kncbench -exp table2
//	kncbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"phihpl"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "", "experiment id (table1, table2, fig4, fig6, fig7, fig9, fig11, table3, all)")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range phihpl.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *exp == "all" {
		for _, e := range phihpl.Experiments() {
			fmt.Printf("=== %s: %s ===\n%s\n", e.ID, e.Title, e.Run())
		}
		return
	}
	e := phihpl.FindExperiment(*exp)
	if e == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("=== %s: %s ===\n%s", e.ID, e.Title, e.Run())
}
