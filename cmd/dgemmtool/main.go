// Command dgemmtool exercises the DGEMM layers: it verifies the real
// kernels against each other and prints the machine model's projection for
// a requested shape.
//
// Usage:
//
//	dgemmtool -m 512 -n 512 -k 256 -verify
//	dgemmtool -m 1024 -n 1024 -k 512 -trace dgemm.json -metrics
//	dgemmtool -m 28000 -n 28000 -k 300 -project
//
// With -trace, the packed fast path's per-K-block pack/compute phases are
// recorded and written as Chrome trace-event JSON (chrome://tracing or
// ui.perfetto.dev); -metrics prints the registry snapshot (packed calls,
// bytes packed, flops, GFLOPS of the timed DgemmPacked run, pool drops).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/matrix"
	"phihpl/internal/metrics"
	"phihpl/internal/offload"
	"phihpl/internal/pack"
	"phihpl/internal/perfmodel"
	"phihpl/internal/pool"
	"phihpl/internal/trace"
)

func main() {
	var (
		m        = flag.Int("m", 512, "rows of C")
		n        = flag.Int("n", 512, "cols of C")
		k        = flag.Int("k", 256, "inner dimension")
		verify   = flag.Bool("verify", false, "run all real DGEMM paths and compare")
		project  = flag.Bool("project", false, "print machine-model projections")
		seed     = flag.Uint64("seed", 1, "operand seed")
		traceOut = flag.String("trace", "", "write Chrome trace-event JSON of a timed DgemmPacked run to this file")
		metricsF = flag.Bool("metrics", false, "print a metrics snapshot after the run")
	)
	flag.Parse()
	if !*verify && !*project && *traceOut == "" && !*metricsF {
		*verify = true
	}

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = new(trace.Recorder)
	}
	var reg *metrics.Registry
	if *metricsF {
		reg = metrics.NewRegistry()
	}
	if rec != nil || reg != nil {
		blas.SetObservability(rec, reg)
		pool.SetObservability(nil, reg)

		a := matrix.RandomGeneral(*m, *k, *seed)
		b := matrix.RandomGeneral(*k, *n, *seed+1)
		c := matrix.NewDense(*m, *n)
		blas.DgemmPacked(false, false, 1, a, b, 0, c, pool.Size()) // warm pools
		rec.Reset()
		start := time.Now()
		blas.DgemmPacked(false, false, 1, a, b, 0, c, pool.Size())
		elapsed := time.Since(start).Seconds()
		gflops := 2 * float64(*m) * float64(*n) * float64(*k) / elapsed / 1e9
		fmt.Printf("DgemmPacked %dx%dx%d: %.3fs, %.2f GFLOPS\n", *m, *n, *k, elapsed, gflops)
		if reg != nil {
			reg.Gauge("blas.packed_gflops").Set(gflops)
		}

		if rec != nil {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if err := rec.WriteChromeTrace(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d spans -> %s (open in chrome://tracing or ui.perfetto.dev)\n",
				len(rec.Spans()), *traceOut)
		}
		if reg != nil {
			fmt.Println("metrics:")
			reg.WriteText(os.Stdout)
		}
	}

	if *verify {
		a := matrix.RandomGeneral(*m, *k, *seed)
		b := matrix.RandomGeneral(*k, *n, *seed+1)
		ref := matrix.NewDense(*m, *n)
		blas.Dgemm(false, false, 1, a, b, 0, ref)

		packed := matrix.NewDense(*m, *n)
		pack.Gemm(pack.PackA(a, pack.DefaultTileM), pack.PackB(b), packed, 4)
		fmt.Printf("packed-tile kernel vs reference: maxdiff %.3g\n", matrix.MaxDiff(packed, ref))

		fast := matrix.NewDense(*m, *n)
		blas.DgemmPacked(false, false, 1, a, b, 0, fast, 4)
		fmt.Printf("packed fast path (DgemmPacked) vs reference: maxdiff %.3g\n", matrix.MaxDiff(fast, ref))

		off := matrix.NewDense(*m, *n)
		stats := offload.Compute(a, b, off, offload.RealConfig{Mt: 64, Nt: 64, CardWorkers: 2, HostWorkers: 2})
		fmt.Printf("offload work-stealing vs reference: maxdiff %.3g (card %d tiles, host %d tiles)\n",
			matrix.MaxDiff(off, ref), stats.CardTiles, stats.HostTiles)

		par := matrix.NewDense(*m, *n)
		blas.DgemmParallel(false, false, 1, a, b, 0, par, 8)
		if !matrix.Equal(par, ref) {
			fmt.Println("parallel DGEMM mismatch!")
			os.Exit(1)
		}
		fmt.Println("parallel DGEMM: bitwise identical to reference")
	}

	if *project {
		knc := perfmodel.NewKNC()
		snb := perfmodel.NewSNB()
		fmt.Printf("Knights Corner DGEMM %dx%dx%d: %.1f GFLOPS (%.1f%% of 60-core peak)\n",
			*m, *n, *k, knc.DgemmGFLOPS(*m, *n, *k), knc.DgemmEff(*m, *n, *k)*100)
		fmt.Printf("Sandy Bridge EP (MKL model):   %.1f GFLOPS (%.1f%%)\n",
			snb.DgemmEff(minInt(*m, *n))*snb.Arch.PeakDPGFLOPS(), snb.DgemmEff(minInt(*m, *n))*100)
		r := offload.Simulate(*m, *n, offload.SimConfig{Cards: 1})
		fmt.Printf("offload DGEMM (1 card, Kt=1200): %.1f GFLOPS (%.1f%%), tile %d\n",
			r.GFLOPS, r.Eff*100, r.Mt)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
