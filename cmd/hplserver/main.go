// Command hplserver runs HPL-as-a-service: a long-running, multi-tenant
// solve server over the cancellable phihpl stack.
//
//	hplserver -addr :8080 -queue 64 -concurrency 2 -tenant-cap 2
//
// Submit and watch jobs:
//
//	curl -s -XPOST localhost:8080/v1/solve -H 'X-Tenant: alice' \
//	     -d '{"mode":"native","n":512,"nb":64,"workers":4}'
//	curl -s localhost:8080/v1/jobs/j-1
//	curl -sN localhost:8080/v1/jobs/j-1/stream
//	curl -s localhost:8080/metrics?format=text
//
// Robustness contract (DESIGN.md §11): a full queue answers 429 +
// Retry-After; invalid requests get typed 400s; every job runs under a
// server-enforced deadline with per-job panic isolation and transient-
// error retries; SIGTERM/SIGINT drains gracefully — admission stops,
// /readyz flips to 503, queued jobs abort, running jobs get the drain
// deadline to finish, and the process exits 0.
//
// Durability (DESIGN.md §13): -journal enables a write-ahead journal of
// job state. After a crash (SIGKILL, OOM, power loss) the next start
// replays it — completed results and the deterministic-spec cache
// survive verbatim, queued jobs are re-enqueued and run, and jobs that
// were mid-solve are marked ABORTED with a typed "interrupted" error.
// /readyz answers 503 {"status":"recovering"} until replay completes.
//
//	hplserver -addr :8080 -journal /var/lib/hplserver/wal.journal
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"phihpl/internal/blas"
	"phihpl/internal/cluster"
	"phihpl/internal/hpl"
	"phihpl/internal/lu"
	"phihpl/internal/metrics"
	"phihpl/internal/pool"
	"phihpl/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 64, "bounded queue depth across tenants (full queue => 429)")
		concurrency = flag.Int("concurrency", 2, "scheduler workers = max concurrently running jobs")
		tenantCap   = flag.Int("tenant-cap", 0, "max concurrently running jobs per tenant (0 = concurrency/2)")
		weights     = flag.String("tenant-weights", "", "weighted round-robin dequeue weights, e.g. 'alice=3,bob=1'")
		maxN        = flag.Int("max-n", 4096, "largest accepted problem size")
		maxGrid     = flag.Int("max-grid", 16, "largest accepted P*Q process grid")
		memBudget   = flag.Int("mem-budget-mib", 4096, "running-jobs matrix-footprint budget (MiB); jobs queue rather than OOM")
		jobTimeout  = flag.Duration("job-timeout", time.Minute, "default per-job deadline")
		maxTimeout  = flag.Duration("max-job-timeout", 5*time.Minute, "ceiling on any per-job deadline")
		retries     = flag.Int("retries", 2, "default transient-error retry budget per job")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM/SIGINT before in-flight jobs are cancelled")

		journalPath  = flag.String("journal", "", "write-ahead journal file for durable job state ('' = in-memory only)")
		compactEvery = flag.Int("journal-compact-every", 4096, "journal records between snapshot compactions (<0 disables)")
		preemptGrace = flag.Duration("preempt-grace", 3*time.Second, "window a cancelled solve gets to unwind before it is force-finalized")
	)
	flag.Parse()

	tw, err := parseWeights(*weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// One registry feeds /metrics from every layer the jobs touch: the
	// worker pool, the packed BLAS, the cluster fabric, the LU drivers and
	// the server's own admission/fairness/cache counters.
	reg := metrics.NewRegistry()
	pool.SetObservability(nil, reg)
	blas.SetObservability(nil, reg)
	cluster.SetMetrics(reg)
	hpl.SetMetrics(reg)
	lu.SetMetrics(reg)

	srv, err := server.Open(server.Config{
		QueueDepth:     *queue,
		Concurrency:    *concurrency,
		TenantCap:      *tenantCap,
		TenantWeights:  tw,
		MaxN:           *maxN,
		MaxGrid:        *maxGrid,
		MemBudget:      int64(*memBudget) << 20,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		DefaultRetries: *retries,
		Metrics:        reg,
		JournalPath:    *journalPath,
		CompactEvery:   *compactEvery,
		PreemptGrace:   *preemptGrace,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// Recovery banner: log what the journal replay found as soon as it
	// settles (immediately when -journal is unset). Readiness (/readyz)
	// flips 503 "recovering" -> 200 at the same moment.
	go func() {
		st, err := srv.WaitRecovered(context.Background())
		if err != nil {
			return
		}
		if *journalPath == "" {
			return
		}
		log.Printf("journal replay done (boot generation %d): %d terminal restored, %d cache entries, "+
			"%d requeued, %d interrupted, %d invalid",
			st.Generation, st.RestoredTerminal, st.RestoredCache, st.Requeued, st.Interrupted, st.Invalid)
		if js := st.Journal; js.Damaged() {
			log.Printf("journal repair: %d torn bytes truncated, %d CRC-corrupt frames skipped, bad header=%v",
				js.TruncatedBytes, js.SkippedCRC, js.BadHeader)
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()
	log.Printf("hplserver listening on %s (queue=%d concurrency=%d)", ln.Addr(), *queue, *concurrency)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("received %s: draining (budget %s)", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	_ = httpSrv.Shutdown(shutCtx)
	log.Printf("drained; exiting 0")
}

// parseWeights parses "a=3,b=1" into a weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("tenant-weights: %q is not tenant=weight", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant-weights: %q must have a positive integer weight", part)
		}
		out[k] = w
	}
	return out, nil
}
