package phihpl

import (
	"fmt"
	"strings"

	"phihpl/internal/hpl"
	"phihpl/internal/power"
	"phihpl/internal/simlu"
)

// Energy regenerates the paper's concluding energy-efficiency argument
// (Section VII): GFLOPS/W of a CPU-only node, the hybrid node, and the
// future-work configuration running Linpack natively on the cards with
// the host CPUs in deep sleep.
func Energy() string {
	b := power.Default()
	host := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 0}).TFLOPS * 1000
	hy1 := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 1, Lookahead: hpl.PipelinedLookahead}).TFLOPS * 1000
	hy2 := hpl.Simulate(hpl.SimConfig{N: 84000, Cards: 2, Lookahead: hpl.PipelinedLookahead}).TFLOPS * 1000
	native := simlu.Dynamic(simlu.Config{N: 30000}).GFLOPS

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %10s %8s %10s\n", "scenario", "GFLOPS", "watts", "GFLOPS/W")
	row := func(s power.Scenario) {
		fmt.Fprintf(&sb, "%-34s %10.0f %8.0f %10.2f\n", s.Name, s.GFLOPS, s.Watts, s.PerWatt())
	}
	for _, s := range power.Compare(b, host, hy1, native, 1) {
		row(s)
	}
	row(power.Scenario{Name: "hybrid HPL, 2 cards", GFLOPS: hy2, Watts: b.HybridNodeW(2)})
	row(power.Scenario{Name: "native on 2 cards (host asleep)", GFLOPS: 2 * native, Watts: b.NativeNodeW(2)})
	sb.WriteString("\nSection VII: the host is several times slower than a card at comparable\n")
	sb.WriteString("power, so native-on-cards beats the hybrid configuration on GFLOPS/W.\n")
	return sb.String()
}
