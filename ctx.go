package phihpl

import (
	"context"

	"phihpl/internal/hpl"
	"phihpl/internal/lu"
	"phihpl/internal/matrix"
	"phihpl/internal/pool"
	"phihpl/internal/trace"
)

// PanicError is the typed containment of a panic that escaped a worker
// goroutine anywhere in the concurrent layers (thread-group pools, the LU
// schedulers, the offload engine): the worker lane that panicked (-1 for
// the caller), the recovered value, and the stack at the panic site. It is
// returned as an ordinary error — a panicking task never crashes the
// process. errors.As against *PanicError recovers the details.
type PanicError = pool.PanicError

// SolveContext is Solve under a context: the factorization observes ctx at
// every task-issue or stage boundary, so cancelling stops the solve
// promptly (partial work is discarded) and ctx.Err() is returned. An
// already-cancelled context returns immediately without touching the
// system. All worker goroutines are always joined before return.
func SolveContext(ctx context.Context, n int, sched Scheduler, nb, workers int, seed uint64) (SolveResult, error) {
	return SolveTracedContext(ctx, n, sched, nb, workers, seed, nil)
}

// SolveTracedContext is SolveContext with a span recorder attached to the
// native LU driver (see SolveTraced). A nil recorder makes this identical
// to SolveContext.
func SolveTracedContext(ctx context.Context, n int, sched Scheduler, nb, workers int, seed uint64, rec *trace.Recorder) (SolveResult, error) {
	if err := ctx.Err(); err != nil {
		return SolveResult{}, err
	}
	a, b := matrix.RandomSystem(n, seed)
	driver := lu.SequentialCtx
	switch sched {
	case StaticLookahead:
		driver = lu.StaticLookaheadCtx
	case DynamicDAG:
		driver = lu.DynamicCtx
	}
	x, res, err := lu.SolveCtx(ctx, a, b, lu.Options{NB: nb, Workers: workers, Trace: rec}, driver)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: x, Residual: res, Passed: passed(res), N: n}, nil
}

// SolveMixedPrecisionCtx is SolveMixedPrecision under a context, observed
// at the mixed solver's stage boundaries (before the FP32 factorization,
// between refinement steps, and through the cancellable FP64 fallback).
// A nil recorder disables tracing.
func SolveMixedPrecisionCtx(ctx context.Context, n int, mode PrecisionMode, nb, workers int, seed uint64, rec *trace.Recorder) (SolveResult, error) {
	if mode != PrecisionMixed {
		return SolveTracedContext(ctx, n, Sequential, nb, workers, seed, rec)
	}
	if err := ctx.Err(); err != nil {
		return SolveResult{}, err
	}
	a, b := matrix.RandomSystem(n, seed)
	x, res, rep, err := lu.SolveMixedCtx(ctx, a, b, lu.Options{NB: nb, Workers: workers, Trace: rec})
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: x, Residual: res, Passed: passed(res), N: n, Refine: &rep}, nil
}

// SolveDistributedCtx is SolveDistributed under a context: every rank
// observes cancellation at its stage boundary, the world unwinds cleanly,
// and the plain ctx.Err() is returned once ctx is done.
func SolveDistributedCtx(ctx context.Context, n, nb, ranks int, seed uint64) (SolveResult, error) {
	r, err := hpl.SolveDistributedCtx(ctx, n, nb, ranks, seed)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n}, nil
}

// SolveDistributed2DCtx is SolveDistributed2D under a context (see
// SolveDistributedCtx for the cancellation contract).
func SolveDistributed2DCtx(ctx context.Context, n, nb, p, q int, seed uint64) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DCtx(ctx, n, nb, p, q, seed)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n}, nil
}

// SolveDistributed2DModeCtx is SolveDistributed2DMode under a context,
// optionally recording one protocol span per stage phase (panel, swap,
// Lbcast, Ubcast, GEMM) into rec — the real-execution counterpart of the
// paper's Figure 8/9 pipeline Gantt charts. A nil recorder disables
// tracing.
func SolveDistributed2DModeCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, rec *trace.Recorder) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DModeCtx(ctx, n, nb, p, q, seed, mode, rec)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n}, nil
}

// SolveHybrid2DCtx is SolveHybrid2D under a context: cancellation reaches
// both the rank stage boundaries and the offload engine's tile loop, so a
// rank parked in a long trailing update also unwinds promptly.
func SolveHybrid2DCtx(ctx context.Context, n, nb, p, q int, seed uint64) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DHybridCtx(ctx, n, nb, p, q, seed)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n}, nil
}

// SolveHybrid2DModeCtx is SolveHybrid2DMode under a context, optionally
// recording protocol spans into rec (see SolveDistributed2DModeCtx).
func SolveHybrid2DModeCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, rec *trace.Recorder) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DHybridModeCtx(ctx, n, nb, p, q, seed, mode, rec)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n}, nil
}

// SolveDistributed2DPrecisionCtx is SolveDistributed2DPrecision under a
// context, optionally recording protocol spans into rec. Cancellation is
// observed at every rank's stage boundary and between refinement steps.
func SolveDistributed2DPrecisionCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, prec PrecisionMode, rec *trace.Recorder) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DPrecisionCtx(ctx, n, nb, p, q, seed, mode, prec, rec)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds, Refine: r.Refine}, nil
}

// SolveHybrid2DPrecisionCtx is SolveHybrid2DPrecision under a context,
// optionally recording protocol spans into rec.
func SolveHybrid2DPrecisionCtx(ctx context.Context, n, nb, p, q int, seed uint64, mode LookaheadMode, prec PrecisionMode, rec *trace.Recorder) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DHybridPrecisionCtx(ctx, n, nb, p, q, seed, mode, prec, rec)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, Seconds: r.Seconds, Refine: r.Refine}, nil
}

// SolveFaultTolerant2DCtx is SolveFaultTolerant2D under a context.
// Cancellation is not a fault: it never consumes a restart, is never
// wrapped in a *FaultError, and always surfaces as the plain ctx.Err().
func SolveFaultTolerant2DCtx(ctx context.Context, n, nb, p, q int, seed uint64, cfg FTConfig) (SolveResult, error) {
	r, err := hpl.SolveDistributed2DFTCtx(ctx, n, nb, p, q, seed, cfg)
	if err != nil {
		return SolveResult{}, err
	}
	return SolveResult{X: r.X, Residual: r.Residual, Passed: passed(r.Residual), N: n, FT: r.FT}, nil
}
