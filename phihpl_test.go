package phihpl

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSolveAllSchedulers(t *testing.T) {
	var ref []float64
	for _, s := range []Scheduler{Sequential, StaticLookahead, DynamicDAG} {
		res, err := Solve(120, s, 24, 4, 9)
		if err != nil {
			t.Fatalf("scheduler %v: %v", s, err)
		}
		if !res.Passed {
			t.Errorf("scheduler %v: residual %g", s, res.Residual)
		}
		if ref == nil {
			ref = res.X
			continue
		}
		for i := range ref {
			if res.X[i] != ref[i] {
				t.Fatalf("scheduler %v: solution differs at %d", s, i)
			}
		}
	}
}

func TestSolveMixedPrecisionFacade(t *testing.T) {
	mixed, err := SolveMixedPrecision(160, PrecisionMixed, 32, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !mixed.Passed {
		t.Errorf("mixed residual %g fails the verdict", mixed.Residual)
	}
	if mixed.Refine == nil {
		t.Fatal("mixed solve must carry a refinement report")
	}
	if mixed.Refine.FellBack || mixed.Refine.Reason != FallbackNone {
		t.Errorf("well-conditioned system fell back: %v", mixed.Refine.Reason)
	}
	if mixed.Refine.Iterations < 1 {
		t.Error("expected at least one refinement iteration")
	}

	// fp64 mode routes to the classical path: no report, same verdict.
	plain, err := SolveMixedPrecision(160, PrecisionFP64, 32, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Passed || plain.Refine != nil {
		t.Errorf("fp64 mode: passed=%v refine=%v", plain.Passed, plain.Refine)
	}

	// Round-trippable flag vocabulary at the facade.
	for _, s := range []string{"fp64", "mixed"} {
		m, err := ParsePrecisionMode(s)
		if err != nil || m.String() != s {
			t.Errorf("ParsePrecisionMode(%q) = %v, %v", s, m, err)
		}
	}
}

func TestSolveDistributedFacade(t *testing.T) {
	res, err := SolveDistributed(90, 16, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed || res.N != 90 {
		t.Errorf("bad result: %+v", res)
	}
}

func TestSimFacades(t *testing.T) {
	if g, e := NativeLinpackSim(30000); g < 800 || e < 0.75 {
		t.Errorf("native sim: %v GF %v eff", g, e)
	}
	if g, _ := NativeLinpackStaticSim(30000); g < 750 {
		t.Errorf("static sim: %v GF", g)
	}
	if g, e := OffloadDGEMMSim(82000, 82000, 1); g < 900 || e < 0.84 {
		t.Errorf("offload sim: %v GF %v eff", g, e)
	}
	r := HybridHPLSim(HybridConfig{N: 84000, Cards: 1, Lookahead: PipelinedLookahead})
	if r.TFLOPS < 1.0 {
		t.Errorf("hybrid sim: %v TF", r.TFLOPS)
	}
	if n := MaxProblemSize(1, 64, 1200); n < 80000 || n > 90000 {
		t.Errorf("MaxProblemSize: %d", n)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 11 {
		t.Fatalf("expected 11 experiments, got %d", len(exps))
	}
	for _, e := range exps {
		if FindExperiment(e.ID) == nil {
			t.Errorf("FindExperiment(%q) failed", e.ID)
		}
	}
	if FindExperiment("nope") != nil {
		t.Error("unknown id should be nil")
	}
}

// The fast experiment runners must produce well-formed tables; the heavy
// ones (fig6/fig9/table3) are exercised by the benchmarks.
func TestExperimentOutputs(t *testing.T) {
	for id, want := range map[string][]string{
		"table1": {"Knights Corner", "Sandy Bridge EP", "1074"},
		"table2": {"300", "944", "DGEMM"},
		"fig4":   {"28000", "pack"},
		"fig7":   {"legend:", "DGETRF", "dynamic"},
		"fig11":  {"82000", "2card"},
	} {
		out := FindExperiment(id).Run()
		for _, w := range want {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", id, w, out)
			}
		}
	}
}

func TestTable3Output(t *testing.T) {
	if testing.Short() {
		t.Skip("table3 simulates 15 cluster configurations")
	}
	out := Table3()
	if strings.Count(out, "\n") < 16 {
		t.Errorf("table3 should have 15 rows + header:\n%s", out)
	}
	for _, w := range []string{"pipeline, 1 card, 128GB", "825K", "10"} {
		if !strings.Contains(out, w) {
			t.Errorf("table3 missing %q", w)
		}
	}
}

func TestFig6Fig9Outputs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulations")
	}
	if out := Fig6(); !strings.Contains(out, "30000") || !strings.Contains(out, "dynamic") {
		t.Errorf("fig6 malformed:\n%s", out)
	}
	if out := Fig9(); !strings.Contains(out, "saved%") || !strings.Contains(out, "pipelined") {
		t.Errorf("fig9 malformed:\n%s", out)
	}
}

func TestFacade2DSolvers(t *testing.T) {
	r, err := SolveDistributed2D(72, 12, 2, 3, 8)
	if err != nil || !r.Passed {
		t.Fatalf("2D: %v passed=%v", err, r.Passed)
	}
	h, err := SolveHybrid2D(72, 12, 2, 2, 8)
	if err != nil || !h.Passed {
		t.Fatalf("hybrid 2D: %v passed=%v", err, h.Passed)
	}
	// Both must agree with the 1D driver's solution to round-off.
	one, err := SolveDistributed(72, 12, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.X {
		if one.X[i] != r.X[i] {
			t.Fatal("1D and 2D solutions must be bitwise identical")
		}
	}
}

func TestVerdictRejectsNonFiniteResidual(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if passed(bad) {
			t.Errorf("residual %v must be FAILED", bad)
		}
	}
	if !passed(0.5) {
		t.Error("residual 0.5 must be PASSED")
	}
	if passed(ResidualThreshold) {
		t.Error("the threshold itself is FAILED (strict bound)")
	}
}

func TestFaultTolerantFacade(t *testing.T) {
	plan, err := ParseFaultPlan("seed=5;drop=0.04;scrub=3@1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := SolveFaultTolerant2D(64, 16, 2, 2, 11, FTConfig{
		Plan: plan, CheckpointEvery: 2, MaxRestarts: 2, Timeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Errorf("residual %g FAILED under recoverable faults", r.Residual)
	}
	if r.FT == nil {
		t.Fatal("fault-tolerant run must report FT stats")
	}

	// Empty plan: bitwise identical to the plain 2D driver, no recovery.
	clean, err := SolveFaultTolerant2D(64, 16, 2, 2, 11, FTConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveDistributed2D(64, 16, 2, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.X {
		if clean.X[i] != ref.X[i] {
			t.Fatal("empty fault plan must be bitwise identical to SolveDistributed2D")
		}
	}
}

func TestFaultPlanParseErrors(t *testing.T) {
	if _, err := ParseFaultPlan("drop=2.5"); err == nil {
		t.Error("out-of-range probability must be rejected")
	}
	if _, err := ParseFaultPlan("bogus=1"); err == nil {
		t.Error("unknown key must be rejected")
	}
}
