# Developer entry points. Everything below is plain `go` — the Makefile
# only names the invocations CI and reviewers should run.

GO ?= go

.PHONY: all build test vet race race-scalar bench benchjson fuzz smoke check clean

all: vet test

# check: the full pre-merge gate — build, vet, the whole test suite, and
# the race detector over every package with cross-goroutine mutable state.
check: build vet test race

build:
	$(GO) build ./...

# -timeout 10m: a hung cancellation path (leaked worker, wedged rank)
# fails the suite with a goroutine dump instead of stalling CI forever.
test: build
	$(GO) test -timeout 10m ./...

vet:
	$(GO) vet ./...

# race: the numerics gate for the concurrent hot path. Runs vet plus the
# race detector over the packages that share mutable state across
# goroutines: the packed DGEMM fast path, the persistent worker pool, the
# tile packers, the LU drivers built on top of them, the offload
# work-stealing engine (heartbeats, straggler reclaim, cancellation), the
# fault-path packages (message fabric + fault-tolerant distributed
# solver), the observability layer they all feed (span recorder +
# metrics registry), the matrix containers (FP64 and FP32) the kernels
# share, the facade package that drives the mixed-precision solve, and
# the multi-tenant solve server (queue, scheduler, cache, drain).
race:
	$(GO) vet ./...
	$(GO) test -race -timeout 10m . ./internal/matrix/... ./internal/blas/... ./internal/pool/... ./internal/pack/... ./internal/lu/... ./internal/offload/... ./internal/cluster/... ./internal/hpl/... ./internal/fault/... ./internal/trace/... ./internal/metrics/... ./internal/server/... ./internal/journal/...

# smoke: end-to-end hplserver check — start the server, run an FP64, a
# native mixed, and a 2D-distributed mixed solve over HTTP, SIGTERM for
# a clean exit 0; then the crash-durability phase: SIGKILL a journaled
# server mid-job and require the restart to recover the cache and abort
# the interrupted job.
smoke:
	sh scripts/smoke_hplserver.sh

# bench: the packed-path vs reference comparison (GFLOPS + steady-state
# allocation counts).
bench:
	$(GO) test ./internal/blas -bench 'Dgemm|RankK' -benchmem -run xxx

# benchjson: the machine-readable benchmark record — DgemmPacked vs
# DgemmParallel at several sizes, the dynamic-DAG LU, the real 2D
# distributed HPL under each (look-ahead schedule, precision) pair —
# Hpl2D-<mode> FP64 rows plus Hpl2D-mixed-<mode> rows (FP32 block-cyclic
# factorization + FP64 refinement, speedup_vs_fp64 against the matching
# FP64 best; an always-falling-back system yields a FALLBACK verdict with
# the typed reason instead of aborting) — and the single-node HPL-MxP
# head-to-head, written to BENCH_<yyyymmdd>.json (GFLOPS, ns/op,
# allocs/op). Diff two files to see a regression as a number.
benchjson:
	$(GO) run ./cmd/benchjson

# fuzz: a short deep-fuzz of the FP64 micro-kernel dispatcher against its
# scalar oracle (never panic, ulp envelope, no out-of-window writes), the
# pack → micro-kernel → unpack chain, then the write-ahead journal's
# crash-recovery scanner (arbitrary bytes must never panic, and repair
# accounting must close exactly).
fuzz:
	$(GO) test ./internal/pack -fuzz FuzzMicroKernel -fuzztime 30s
	$(GO) test ./internal/blas -fuzz FuzzPackedGemm -fuzztime 30s
	$(GO) test ./internal/journal -fuzz FuzzJournalDecode -fuzztime 30s

# race-scalar: the race gate with the vector micro-kernels disabled — the
# portable-scalar oracle path under the race detector, the same leg CI's
# scalar-oracle job runs.
race-scalar:
	PHIHPL_DISABLE_VECTOR_KERNEL=1 $(GO) test -race -timeout 10m ./internal/blas/... ./internal/pack/... ./internal/lu/... ./internal/pool/...

clean:
	$(GO) clean ./...
