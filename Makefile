# Developer entry points. Everything below is plain `go` — the Makefile
# only names the invocations CI and reviewers should run.

GO ?= go

.PHONY: all build test vet race bench benchjson fuzz smoke check clean

all: vet test

# check: the full pre-merge gate — build, vet, the whole test suite, and
# the race detector over every package with cross-goroutine mutable state.
check: build vet test race

build:
	$(GO) build ./...

# -timeout 10m: a hung cancellation path (leaked worker, wedged rank)
# fails the suite with a goroutine dump instead of stalling CI forever.
test: build
	$(GO) test -timeout 10m ./...

vet:
	$(GO) vet ./...

# race: the numerics gate for the concurrent hot path. Runs vet plus the
# race detector over the packages that share mutable state across
# goroutines: the packed DGEMM fast path, the persistent worker pool, the
# tile packers, the LU drivers built on top of them, the offload
# work-stealing engine (heartbeats, straggler reclaim, cancellation), the
# fault-path packages (message fabric + fault-tolerant distributed
# solver), the observability layer they all feed (span recorder +
# metrics registry), the matrix containers (FP64 and FP32) the kernels
# share, the facade package that drives the mixed-precision solve, and
# the multi-tenant solve server (queue, scheduler, cache, drain).
race:
	$(GO) vet ./...
	$(GO) test -race -timeout 10m . ./internal/matrix/... ./internal/blas/... ./internal/pool/... ./internal/pack/... ./internal/lu/... ./internal/offload/... ./internal/cluster/... ./internal/hpl/... ./internal/fault/... ./internal/trace/... ./internal/metrics/... ./internal/server/...

# smoke: end-to-end hplserver check — start the server, run an FP64 and
# a mixed-precision solve over HTTP, SIGTERM, require a clean exit 0.
smoke:
	sh scripts/smoke_hplserver.sh

# bench: the packed-path vs reference comparison (GFLOPS + steady-state
# allocation counts).
bench:
	$(GO) test ./internal/blas -bench 'Dgemm|RankK' -benchmem -run xxx

# benchjson: the machine-readable benchmark record — DgemmPacked vs
# DgemmParallel at several sizes, the dynamic-DAG LU, the real 2D
# distributed HPL at n=768 / NB=32 / 4x4 under each look-ahead schedule
# (none, basic, pipelined), and the HPL-MxP head-to-head (FP64 solve vs
# FP32 factorization + FP64 refinement at n=768, interleaved best-of) —
# written to BENCH_<yyyymmdd>.json (GFLOPS, ns/op, allocs/op). Diff two
# files to see a regression as a number.
benchjson:
	$(GO) run ./cmd/benchjson

# fuzz: a short deep-fuzz of the pack → micro-kernel → unpack chain.
fuzz:
	$(GO) test ./internal/blas -fuzz FuzzPackedGemm -fuzztime 30s

clean:
	$(GO) clean ./...
