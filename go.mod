module phihpl

go 1.22
