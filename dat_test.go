package phihpl

import (
	"strings"
	"testing"

	"phihpl/internal/hplio"
)

func TestRunDatMixedRealAndSim(t *testing.T) {
	in := `HPLinpack benchmark input file
2        # of problems sizes (N)
240 84000 Ns
1        # of NBs
48       NBs
1        # of process grids (P x Q)
2        Ps
2        Qs
2        # of lookahead depth
1 2      DEPTHs
`
	var out strings.Builder
	if err := RunDat(strings.NewReader(in), &out, 2000); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The small N runs the real solver and prints residual lines.
	if !strings.Contains(s, "PASSED") {
		t.Errorf("expected a real PASSED residual line:\n%s", s)
	}
	// 2 Ns x 2 depths = 4 result rows.
	if got := strings.Count(s, "WR"); got != 4 {
		t.Errorf("expected 4 result rows, got %d:\n%s", got, s)
	}
	if !strings.Contains(s, "2 tests completed and passed") {
		t.Errorf("summary wrong:\n%s", s)
	}
}

func TestRunDatSkipsIllegalCombinations(t *testing.T) {
	// A non-positive N must be skipped and counted in the footer, not run
	// (the real solver would reject it) nor priced by the simulator.
	in := `HPLinpack benchmark input file
2        # of problems sizes (N)
0 240    Ns
1        # of NBs
48       NBs
1        # of process grids (P x Q)
1        Ps
1        Qs
1        # of lookahead depth
1        DEPTHs
`
	var out strings.Builder
	if err := RunDat(strings.NewReader(in), &out, 2000); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "1 tests skipped because of illegal input values") {
		t.Errorf("skipped count missing:\n%s", s)
	}
	if !strings.Contains(s, "Finished      1 tests") {
		t.Errorf("finished count must exclude the skipped combination:\n%s", s)
	}
	if got := strings.Count(s, "WR"); got != 1 {
		t.Errorf("expected 1 result row, got %d:\n%s", got, s)
	}
}

func TestRunDatParseError(t *testing.T) {
	if err := RunDat(strings.NewReader("garbage"), &strings.Builder{}, 0); err == nil {
		t.Error("expected parse error")
	}
}

func TestRunDatExampleAllSim(t *testing.T) {
	var out strings.Builder
	if err := RunDat(strings.NewReader(hplio.Example()), &out, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "PASSED") {
		t.Error("pure-sim run must not print residual lines")
	}
}

func TestDepthMapping(t *testing.T) {
	if depthToMode(0) != NoLookahead || depthToMode(1) != BasicLookahead || depthToMode(2) != PipelinedLookahead {
		t.Error("depth mapping")
	}
	if simNB(48) != 1200 || simNB(1200) != 1200 || simNB(960) != 960 {
		t.Error("simNB promotion")
	}
}

func TestLUFlopsExport(t *testing.T) {
	if LUFlops(3) != 2.0/3.0*27+18 {
		t.Error("LUFlops")
	}
}

func TestEnergyExperiment(t *testing.T) {
	out := Energy()
	for _, w := range []string{"GFLOPS/W", "hybrid HPL", "native on cards", "host-only"} {
		if !strings.Contains(out, w) {
			t.Errorf("energy output missing %q:\n%s", w, out)
		}
	}
}
